//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the exact API surface it uses: [`Rng::gen`], [`Rng::gen_range`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`rngs::mock::StepRng`]. The generator behind `StdRng` is
//! xoshiro256++ seeded through SplitMix64 — not the upstream ChaCha12, so
//! streams differ from the real crate, but determinism per seed (the only
//! property the workspace relies on) is preserved.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable uniformly from their full domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1) with full single precision.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with uniform sampling over a half-open or inclusive range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`; `hi` itself included when `inclusive`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                assert!(
                    if inclusive { lo <= hi } else { lo < hi },
                    "gen_range: empty range"
                );
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                if span == 0 || span > u64::MAX as u128 {
                    // Full 64-bit domain: every draw is in range.
                    return rng.next_u64() as $t;
                }
                let span = span as u64;
                // Debiased multiply-shift (Lemire); the retry loop runs
                // essentially never for the small spans used here.
                let threshold = span.wrapping_neg() % span;
                loop {
                    let m = (rng.next_u64() as u128) * (span as u128);
                    if (m as u64) >= threshold {
                        return lo.wrapping_add(((m >> 64) as u64) as $t);
                    }
                }
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                assert!(
                    if inclusive { lo <= hi } else { lo < hi },
                    "gen_range: empty range"
                );
                let u = <$t as Standard>::sample(rng);
                let v = lo + (hi - lo) * u;
                // Rounding can land exactly on `hi` for half-open ranges.
                if !inclusive && v >= hi { lo } else { v }
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(rng, lo, hi, true)
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw over the full domain of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform draw from `range` (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// A Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of
    /// `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 step, used for seeding and for deriving child seeds.
    pub(crate) fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for checkpointing. Restoring it
        /// with [`StdRng::from_state`] resumes the stream exactly.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a captured [`StdRng::state`].
        /// An all-zero state is invalid for xoshiro and is reseeded.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Per-thread generator, seeded uniquely per instance from a global
    /// counter (this process has no entropy-based seeding).
    #[derive(Debug, Clone)]
    pub struct ThreadRng(StdRng);

    impl Default for ThreadRng {
        fn default() -> Self {
            use std::sync::atomic::{AtomicU64, Ordering};
            static NEXT: AtomicU64 = AtomicU64::new(0x5EED);
            Self(StdRng::seed_from_u64(NEXT.fetch_add(1, Ordering::Relaxed)))
        }
    }

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Deterministic mock generators.
    pub mod mock {
        use super::super::RngCore;

        /// Arithmetic-progression generator for code paths that require an
        /// `Rng` but must not consume real randomness.
        #[derive(Debug, Clone)]
        pub struct StepRng {
            v: u64,
            increment: u64,
        }

        impl StepRng {
            /// Starts at `initial`, stepping by `increment` per draw.
            pub fn new(initial: u64, increment: u64) -> Self {
                Self {
                    v: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.increment);
                out
            }
        }
    }
}

/// A fresh uniquely-seeded generator (see [`rngs::ThreadRng`]).
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::default()
}

/// Derives a child seed from a base seed and a stream index; used to give
/// parallel workers independent deterministic streams.
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut s = base ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
    rngs::splitmix64(&mut s)
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let i = rng.gen_range(3..17usize);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&j));
            let f = rng.gen_range(-2.0..2.0f32);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        assert!((total / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn step_rng_is_an_arithmetic_progression() {
        let mut rng = StepRng::new(10, 3);
        assert_eq!(rng.next_u64(), 10);
        assert_eq!(rng.next_u64(), 13);
        assert_eq!(rng.next_u64(), 16);
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(11);
        for _ in 0..37 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Degenerate all-zero state must still produce a working stream.
        let mut z = StdRng::from_state([0; 4]);
        assert_ne!(z.next_u64(), z.next_u64());
    }

    #[test]
    fn derived_seeds_decorrelate_streams() {
        let a = derive_seed(42, 0);
        let b = derive_seed(42, 1);
        assert_ne!(a, b);
        assert_eq!(a, derive_seed(42, 0));
    }
}
