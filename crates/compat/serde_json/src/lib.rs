//! Offline stand-in for `serde_json`.
//!
//! Renders the serde shim's [`Value`] tree to JSON text and parses it
//! back. Numbers use Rust's shortest-round-trip float formatting, so
//! `f64`/`f32` values survive a text round-trip bit-exactly; non-finite
//! floats are written as `null` (what the real crate does) and read
//! back as NaN.

pub use serde::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Parse or render failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{}` is Rust's shortest representation that parses
                // back to the same f64; force a `.0` so integral floats
                // stay floats through a round-trip.
                let s = x.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => write_seq(out, items.iter(), items.len(), '[', ']', indent, depth),
        Value::Obj(entries) => {
            write_obj(out, entries, indent, depth);
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_seq<'a>(
    out: &mut String,
    items: impl Iterator<Item = &'a Value>,
    len: usize,
    open: char,
    close: char,
    indent: Option<usize>,
    depth: usize,
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, depth + 1);
        write_value(out, item, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out.push(close);
}

fn write_obj(out: &mut String, entries: &[(String, Value)], indent: Option<usize>, depth: usize) {
    out.push('{');
    if entries.is_empty() {
        out.push('}');
        return;
    }
    for (i, (key, value)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, depth + 1);
        write_string(out, key);
        out.push(':');
        if indent.is_some() {
            out.push(' ');
        }
        write_value(out, value, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out.push('}');
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error::new("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            entries.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(Error::new("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs for astral-plane chars.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00));
                                    char::from_u32(combined)
                                        .ok_or_else(|| Error::new("invalid surrogate pair"))?
                                } else {
                                    return Err(Error::new("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input began as &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        self.pos += 4;
        let s = std::str::from_utf8(hex).map_err(|_| Error::new("invalid \\u escape"))?;
        u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(if n >= 0 {
                    Value::U64(n as u64)
                } else {
                    Value::I64(n)
                });
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&"a \"b\"\n").unwrap(), "\"a \\\"b\\\"\\n\"");
        assert_eq!(
            from_str::<String>("\"a \\\"b\\\"\\n\"").unwrap(),
            "a \"b\"\n"
        );
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1f64, 1.0, -3.5e-12, f64::MAX, 2.0f32.powi(-30) as f64] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{json}");
        }
        let nan_json = to_string(&f64::NAN).unwrap();
        assert_eq!(nan_json, "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }

    #[test]
    fn large_u64_survives() {
        let seed = u64::MAX - 3;
        let json = to_string(&seed).unwrap();
        assert_eq!(from_str::<u64>(&json).unwrap(), seed);
    }

    #[test]
    fn vec_and_tuple_round_trip() {
        let pairs: Vec<(f64, f64)> = vec![(0.0, 1.0), (0.25, 0.75)];
        let json = to_string_pretty(&pairs).unwrap();
        let back: Vec<(f64, f64)> = from_str(&json).unwrap();
        assert_eq!(back, pairs);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = Value::Obj(vec![
            ("a".to_string(), Value::U64(1)),
            ("b".to_string(), Value::Arr(vec![Value::Bool(false)])),
        ]);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"a\": 1,\n  \"b\": [\n    false\n  ]\n}");
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
