//! Offline stand-in for `proptest`.
//!
//! Provides the subset this workspace's property tests use: the
//! `proptest!` macro (with optional `#![proptest_config(..)]` header),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, range and tuple
//! strategies, `collection::vec`, `bool::weighted`, `any`, and
//! `prop_map`. No shrinking: cases are generated from seeds derived
//! deterministically from the test name, so a failure reproduces
//! exactly on re-run. `PROPTEST_CASES` overrides the case count.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// The generator handed to strategies; re-exported so user code can
/// name it if needed.
pub type TestRng = StdRng;

/// A recipe for producing random values of one type.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T: rand::SampleUniform + PartialOrd + Clone> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: rand::SampleUniform + PartialOrd + Clone> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical full-domain strategy, for [`any`].
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
arbitrary_via_standard!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Output of [`any`].
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`'s full domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification accepted by [`vec`].
    #[derive(Clone)]
    pub enum SizeRange {
        Exact(usize),
        /// `[lo, hi)`.
        HalfOpen(usize, usize),
        /// `[lo, hi]`.
        Inclusive(usize, usize),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Exact(n)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange::HalfOpen(r.start, r.end)
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            SizeRange::Inclusive(lo, hi)
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            match *self {
                SizeRange::Exact(n) => n,
                SizeRange::HalfOpen(lo, hi) => rng.gen_range(lo..hi),
                SizeRange::Inclusive(lo, hi) => rng.gen_range(lo..=hi),
            }
        }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for vectors whose elements come from `element` and
    /// whose length comes from `size` (an exact `usize` or a range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Output of [`weighted`].
    pub struct Weighted(f64);

    /// `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        Weighted(p)
    }

    impl Strategy for Weighted {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(self.0)
        }
    }
}

/// Namespace mirror of the real crate's `prop` re-exports.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
}

/// Per-block runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// FNV-1a, used to turn a test name into a base seed.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drives one property: `cfg.cases` deterministic cases seeded from the
/// test name. Assertion failures panic (normal test failure); an `Err`
/// return means a `prop_assume!` rejected the case.
pub fn run_cases<F>(cfg: &ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), ()>,
{
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(cfg.cases);
    let base = fnv1a(name);
    for case in 0..cases {
        let mut rng = StdRng::seed_from_u64(rand::derive_seed(base, case as u64));
        let _ = f(&mut rng);
    }
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { .. }`
/// becomes a test that runs the body over generated inputs; an optional
/// `#![proptest_config(..)]` header sets the case count for the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident ($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(&($cfg), stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Asserts inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Rejects the current case (counted as passing; no retry).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err(());
        }
    };
}

/// What `use proptest::prelude::*` brings into scope.
pub mod prelude {
    pub use crate::{any, prop, Arbitrary, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u8..5, -1.0f64..1.0), n in 1usize..=4) {
            prop_assert!(a < 5);
            prop_assert!((-1.0..1.0).contains(&b));
            prop_assert!((1..=4).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_spec(
            xs in prop::collection::vec(any::<u64>(), 3..7),
            ys in prop::collection::vec(0i32..10, 4usize),
        ) {
            prop_assert!((3..7).contains(&xs.len()));
            prop_assert_eq!(ys.len(), 4);
        }

        #[test]
        fn prop_map_applies(sq in (1u32..100).prop_map(|x| x * x)) {
            let root = (sq as f64).sqrt().round() as u32;
            prop_assert_eq!(root * root, sq);
        }

        #[test]
        fn assume_rejects_cases(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn weighted_bool_tracks_probability() {
        let cfg = ProptestConfig::with_cases(1);
        let mut trues = 0u32;
        crate::run_cases(&cfg, "weighted", |rng| {
            let s = prop::bool::weighted(0.7);
            for _ in 0..1000 {
                if crate::Strategy::generate(&s, rng) {
                    trues += 1;
                }
            }
            Ok(())
        });
        assert!((550..850).contains(&trues), "trues = {trues}");
    }

    #[test]
    fn cases_are_deterministic() {
        let cfg = ProptestConfig::with_cases(5);
        let mut a = Vec::new();
        let mut b = Vec::new();
        crate::run_cases(&cfg, "det", |rng| {
            a.push(crate::Strategy::generate(&(0u64..1000), rng));
            Ok(())
        });
        crate::run_cases(&cfg, "det", |rng| {
            b.push(crate::Strategy::generate(&(0u64..1000), rng));
            Ok(())
        });
        assert_eq!(a, b);
    }
}
