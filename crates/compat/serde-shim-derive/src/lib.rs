//! Derive macros for the offline `serde` stand-in.
//!
//! Supports exactly the shapes this workspace serializes: structs with
//! named fields and enums whose variants are all unit variants. The
//! input `TokenStream` is parsed by hand (no `syn`/`quote`, which are
//! unavailable offline) and the generated impl is assembled as a string.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Struct with named fields: `(name, [field, ...])`.
    Struct(String, Vec<String>),
    /// Enum with unit variants: `(name, [variant, ...])`.
    Enum(String, Vec<String>),
}

/// Splits the derive input into the type name plus its fields/variants.
fn parse(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes (`#[...]`, including doc comments) and
    // visibility; stop at the `struct`/`enum` keyword.
    let kind = loop {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "struct" => break "struct",
            TokenTree::Ident(id) if id.to_string() == "enum" => break "enum",
            _ => i += 1,
        }
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive: expected type name, found {other}"),
    };
    i += 1;
    let body = loop {
        match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => break g.stream(),
            TokenTree::Punct(p) if p.as_char() == '<' => {
                panic!("derive: generic types are not supported by the serde stand-in")
            }
            _ => i += 1,
        }
    };
    if kind == "struct" {
        Shape::Struct(name, named_fields(body))
    } else {
        Shape::Enum(name, unit_variants(body))
    }
}

/// Extracts field names from a named-struct body, skipping attributes,
/// visibility, and type tokens (tracking `<...>` depth so commas inside
/// generic arguments don't split fields).
fn named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            TokenTree::Ident(id) => {
                fields.push(id.to_string());
                // Skip `: Type` up to the next top-level comma.
                let mut depth = 0i32;
                i += 1;
                while i < tokens.len() {
                    match &tokens[i] {
                        TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                        _ => {}
                    }
                    i += 1;
                }
                i += 1; // past the comma
            }
            other => panic!("derive: unexpected token in struct body: {other}"),
        }
    }
    fields
}

/// Extracts variant names from an enum body, requiring every variant to
/// be a unit variant.
fn unit_variants(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            TokenTree::Ident(id) => {
                variants.push(id.to_string());
                i += 1;
                if let Some(TokenTree::Group(_)) = tokens.get(i) {
                    panic!("derive: only unit enum variants are supported");
                }
            }
            other => panic!("derive: unexpected token in enum body: {other}"),
        }
    }
    variants
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse(input) {
        Shape::Struct(name, fields) => {
            let entries: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Obj(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\","))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Str(match self {{ {arms} }}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("derive(Serialize): generated code failed to parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse(input) {
        Shape::Struct(name, fields) => {
            let entries: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de_field(v, \"{f}\")?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         Ok(Self {{ {entries} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         let s = v.as_str().ok_or_else(|| {{\n\
                             ::serde::Error::new(\"expected string for enum {name}\")\n\
                         }})?;\n\
                         match s {{\n\
                             {arms}\n\
                             other => Err(::serde::Error::new(&format!(\n\
                                 \"unknown {name} variant: {{other}}\"\n\
                             ))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("derive(Deserialize): generated code failed to parse")
}
