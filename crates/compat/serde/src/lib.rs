//! Offline stand-in for `serde`.
//!
//! The workspace only ever serializes plain data — named-field structs,
//! unit enums, scalars, strings, options, vectors, tuples and
//! string-keyed maps — to and from JSON. Instead of the full serde
//! architecture this shim converts values through one concrete
//! [`Value`] tree; `serde_json` (the sibling shim) renders and parses
//! that tree. The derive macros live in `serde_shim_derive` and are
//! re-exported here so `#[derive(Serialize, Deserialize)]` keeps
//! working unchanged.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_shim_derive::{Deserialize, Serialize};

/// In-memory JSON tree. Integers keep their own variants so `u64`
/// seeds survive round-trips without passing through `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Insertion-ordered object; duplicate keys never occur in
    /// generated output.
    Obj(Vec<(String, Value)>),
}

impl Value {
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) if *n <= i64::MAX as u64 => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialization / deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    pub fn new(msg: &str) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Fallback when a struct field is absent from the input object;
    /// only `Option` fields have one (mirroring serde's treatment of
    /// missing `Option` fields as `None`).
    fn absent() -> Option<Self> {
        None
    }
}

/// Reads struct field `key` out of object `v`; used by the
/// `Deserialize` derive.
pub fn de_field<T: Deserialize>(v: &Value, key: &str) -> Result<T, Error> {
    match v.get(key) {
        Some(field) => T::from_value(field).map_err(|e| Error(format!("field `{key}`: {e}"))),
        None => T::absent().ok_or_else(|| Error(format!("missing field `{key}`"))),
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::new("expected bool"))
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::new("expected unsigned integer"))?;
                <$t>::try_from(n).map_err(|_| Error::new("unsigned integer out of range"))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::new("expected integer"))?;
                <$t>::try_from(n).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|x| x as f32)
            .ok_or_else(|| Error::new("expected number"))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::new("expected number"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(|s| s.to_string())
            .ok_or_else(|| Error::new("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn absent() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+)),*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::new("expected tuple array"))?;
                let expected = [$($n),+].len();
                if items.len() != expected {
                    return Err(Error(format!(
                        "expected array of {expected}, got {}",
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}
ser_tuple!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Obj(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::new("expected object")),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic regardless of hash order.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Obj(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::new("expected object")),
        }
    }
}
