//! Batcher supervision.
//!
//! A stalled flusher is the one failure backpressure cannot fix: the
//! queue fills, every request times out, and nothing recovers on its
//! own. The watchdog thread samples the batcher's heartbeat counter on
//! an interval; when the queue is non-empty yet the heartbeat has not
//! moved for `stall_timeout`, the flusher is declared stalled and
//! [`crate::Batcher::restart`]ed in place — queued jobs survive and are
//! drained by the replacement thread. Every restart increments the
//! `serve/watchdog_restarts` counter surfaced in `/metrics`.
//!
//! An idle batcher (empty queue, parked in `recv`) legitimately has a
//! frozen heartbeat; the queue-length condition keeps the watchdog from
//! ever restarting a healthy idle flusher.

use crate::batcher::Batcher;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of the watchdog.
#[derive(Debug, Clone, Copy)]
pub struct WatchdogConfig {
    /// How often the heartbeat is sampled.
    pub interval: Duration,
    /// How long the heartbeat may stay frozen (with work queued) before
    /// the flusher is restarted.
    pub stall_timeout: Duration,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self {
            interval: Duration::from_millis(250),
            stall_timeout: Duration::from_secs(2),
        }
    }
}

/// The supervisor thread handle.
pub struct Watchdog {
    stop: Arc<AtomicBool>,
    restarts: Arc<AtomicU64>,
    thread: Option<JoinHandle<()>>,
}

impl Watchdog {
    /// Starts supervising `batcher` under `cfg`.
    pub fn spawn(batcher: Arc<Batcher>, cfg: WatchdogConfig) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let restarts = Arc::new(AtomicU64::new(0));
        let thread_stop = Arc::clone(&stop);
        let thread_restarts = Arc::clone(&restarts);
        let thread = std::thread::Builder::new()
            .name("hisrect-watchdog".into())
            .spawn(move || watch(&batcher, cfg, &thread_stop, &thread_restarts))
            .expect("spawn watchdog thread");
        Self {
            stop,
            restarts: Arc::clone(&restarts),
            thread: Some(thread),
        }
    }

    /// Restarts performed so far.
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }

    /// Stops the supervisor (does not touch the batcher).
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn watch(batcher: &Batcher, cfg: WatchdogConfig, stop: &AtomicBool, restarts: &AtomicU64) {
    let interval = cfg.interval.max(Duration::from_millis(10));
    let mut last_beat = batcher.heartbeat();
    let mut frozen_since: Option<Instant> = None;
    while !stop.load(Ordering::SeqCst) {
        std::thread::sleep(interval);
        let beat = batcher.heartbeat();
        let queued = batcher.queue_len();
        if beat != last_beat || queued == 0 {
            // Progress, or legitimately idle: reset the stall clock.
            last_beat = beat;
            frozen_since = None;
            continue;
        }
        let since = *frozen_since.get_or_insert_with(Instant::now);
        if since.elapsed() >= cfg.stall_timeout {
            let generation = batcher.restart();
            restarts.fetch_add(1, Ordering::Relaxed);
            obs::incr("serve/watchdog_restarts");
            eprintln!(
                "[serve] watchdog: batcher stalled with {queued} queued jobs; \
                 restarted flusher (generation {generation})"
            );
            frozen_since = None;
            last_beat = batcher.heartbeat();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_batcher_is_never_restarted() {
        let batcher = Arc::new(Batcher::new(4, Duration::from_millis(1), 8, None));
        let mut dog = Watchdog::spawn(
            Arc::clone(&batcher),
            WatchdogConfig {
                interval: Duration::from_millis(10),
                stall_timeout: Duration::from_millis(30),
            },
        );
        std::thread::sleep(Duration::from_millis(150));
        assert_eq!(dog.restarts(), 0);
        assert_eq!(batcher.restarts(), 0);
        dog.shutdown();
        batcher.shutdown();
    }
}
