//! The router tier: consistent-hash request proxying across N shard
//! processes, with health-checked ejection and draining restarts.
//!
//! A router is just another [`crate::event_loop`] server whose compute
//! tier proxies instead of judging: `/judge` and `/candidates` forward
//! to the shard owning the request's user id on the [`crate::ring::
//! HashRing`]; `/judge_batch` scatters pairs to their owners and
//! gathers the verdicts back in request order. Every shard loads the
//! full corpus and model, so ownership is cache locality, not
//! correctness — which is why ring-walk failover past an ejected or
//! draining shard returns byte-identical answers.
//!
//! Shard lifecycle:
//!
//! - a poller GETs every shard's `/healthz` each `health_interval`;
//!   `fail_threshold` consecutive failures eject the shard (ring walks
//!   past it), the first success afterwards rejoins it;
//! - `POST /drain {"shard": s}` / `POST /undrain` flip the draining
//!   flag for rolling restarts: a draining shard takes no *new* routed
//!   requests but stays up for in-flight ones;
//! - `POST /reload` runs the drain → reload → undrain cycle across all
//!   shards one at a time, reusing each shard's `/reload` generation
//!   machinery — a whole-cluster model rollout with zero 5xx.
//!
//! Fault hooks: `shard-kill` makes the next proxy/health attempt behave
//! as a dead upstream; `slow-shard` stalls a proxy attempt long enough
//! to look like a struggling one.

use crate::client::HttpClient;
use crate::event_loop::{self, EventLoopConfig, EventLoopHandle, Service};
use crate::http::{Limits, Request, Response};
use crate::ring::HashRing;
use hisrect::Judgement;
use serde::{Deserialize, Serialize};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Router tuning knobs; every CLI `route` flag lands here.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Listen address, e.g. `127.0.0.1:7900` (port 0 picks one).
    pub addr: String,
    /// Shard addresses, `host:port` each, in ring order.
    pub shards: Vec<String>,
    /// Proxy worker threads (each holds one upstream connection per
    /// shard at a time, checked out of the pool).
    pub workers: usize,
    /// Bound on requests queued for the proxy workers.
    pub queue_depth: usize,
    /// Inbound framing limits.
    pub limits: Limits,
    /// Vnodes per shard on the hash ring.
    pub vnodes: usize,
    /// How often the health poller probes each shard.
    pub health_interval: Duration,
    /// Consecutive health/proxy failures before ejection.
    pub fail_threshold: u32,
    /// Per-attempt upstream timeout.
    pub upstream_timeout: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7900".into(),
            shards: Vec::new(),
            workers: 8,
            queue_depth: 1024,
            limits: Limits::default(),
            vnodes: HashRing::DEFAULT_VNODES,
            health_interval: Duration::from_millis(250),
            fail_threshold: 3,
            upstream_timeout: Duration::from_secs(10),
        }
    }
}

/// One upstream shard's live state.
struct Shard {
    addr: SocketAddr,
    /// False once ejected by the health poller.
    up: AtomicBool,
    /// True while draining for a rolling restart.
    draining: AtomicBool,
    consecutive_failures: AtomicU32,
    /// Last generation reported by `/healthz`.
    generation: AtomicU64,
    /// Keep-alive connection pool, one checkout per proxy attempt.
    pool: Mutex<Vec<HttpClient>>,
}

impl Shard {
    fn routable(&self) -> bool {
        self.up.load(Ordering::Relaxed) && !self.draining.load(Ordering::Relaxed)
    }
}

struct RouterInner {
    shards: Vec<Shard>,
    ring: HashRing,
    fail_threshold: u32,
    upstream_timeout: Duration,
    stop: AtomicBool,
}

impl RouterInner {
    fn checkout(&self, s: usize) -> HttpClient {
        let mut pool = self.shards[s]
            .pool
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        pool.pop().unwrap_or_else(|| {
            let mut client = HttpClient::new(self.shards[s].addr);
            client.set_timeout(self.upstream_timeout);
            client
        })
    }

    fn checkin(&self, s: usize, client: HttpClient) {
        let mut pool = self.shards[s]
            .pool
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if pool.len() < 32 {
            pool.push(client);
        }
    }

    /// Records a proxy/health outcome; ejects on the Nth consecutive
    /// failure, rejoins on the first success.
    fn record(&self, s: usize, ok: bool) {
        let shard = &self.shards[s];
        if ok {
            shard.consecutive_failures.store(0, Ordering::Relaxed);
            if !shard.up.swap(true, Ordering::Relaxed) {
                obs::incr("router/rejoins");
            }
        } else {
            let n = shard.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
            if n >= self.fail_threshold && shard.up.swap(false, Ordering::Relaxed) {
                obs::incr("router/ejections");
            }
        }
    }

    /// One proxied request to shard `s`. Transport errors come back as
    /// `Err` so the caller can fail over along the ring.
    fn proxy(
        &self,
        s: usize,
        method: &str,
        path: &str,
        body: Option<&str>,
        headers: &[(&str, &str)],
    ) -> std::io::Result<crate::client::ClientResponse> {
        // Chaos trigger point: a shard that died between health probes.
        if faultsim::fires(faultsim::FaultKind::ShardKill) {
            obs::incr("router/shard_kill_injected");
            self.record(s, false);
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                "injected shard kill",
            ));
        }
        // Chaos trigger point: a shard answering slower than its peers.
        if faultsim::fires(faultsim::FaultKind::SlowShard) {
            obs::incr("router/slow_shard_injected");
            std::thread::sleep(Duration::from_millis(150));
        }
        let mut client = self.checkout(s);
        let result = client.request_with_headers(method, path, body, headers);
        match result {
            Ok(response) => {
                self.record(s, true);
                self.checkin(s, client);
                Ok(response)
            }
            Err(e) => {
                self.record(s, false);
                Err(e)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Request/response shapes (mirror the shard's private ones)
// ---------------------------------------------------------------------------

#[derive(Deserialize)]
struct KeyedRequest {
    i: usize,
}

#[derive(Deserialize)]
struct BatchRequest {
    pairs: Vec<(usize, usize)>,
}

#[derive(Serialize, Deserialize)]
struct BatchBody {
    judgements: Vec<Judgement>,
}

#[derive(Deserialize)]
struct DrainRequest {
    shard: usize,
}

#[derive(Deserialize)]
struct ReloadRequest {
    model: Option<String>,
}

#[derive(Serialize)]
struct RouterHealth {
    status: &'static str,
    role: &'static str,
    shards_total: usize,
    shards_up: usize,
    shards_draining: usize,
    generations: Vec<u64>,
}

// ---------------------------------------------------------------------------
// The proxy service
// ---------------------------------------------------------------------------

struct RouterService {
    inner: Arc<RouterInner>,
}

impl RouterService {
    /// Forwards to the shard owning `uid`, failing over along the ring
    /// once if the first attempt dies in transport.
    fn forward(&self, uid: u64, request: &Request) -> Response {
        let inner = &self.inner;
        let body = std::str::from_utf8(&request.body)
            .ok()
            .map(|s| s.to_owned());
        let deadline = request.deadline_ms.map(|ms| ms.to_string());
        let headers: Vec<(&str, &str)> = deadline
            .as_deref()
            .map(|v| vec![("x-deadline-ms", v)])
            .unwrap_or_default();
        let mut tried: Vec<usize> = Vec::new();
        for _attempt in 0..2 {
            let Some(s) = inner
                .ring
                .owner_where(uid, |s| inner.shards[s].routable() && !tried.contains(&s))
            else {
                break;
            };
            tried.push(s);
            match inner.proxy(s, &request.method, &request.path, body.as_deref(), &headers) {
                Ok(upstream) => {
                    obs::incr("router/proxied");
                    return relay(upstream);
                }
                Err(_) => {
                    obs::incr("router/failovers");
                    continue;
                }
            }
        }
        obs::incr("router/no_shard_503");
        Response::error(503, "no routable shard").with_header("retry-after", "1")
    }

    fn judge_batch(&self, request: &Request) -> Response {
        let req: BatchRequest = match parse_body(&request.body) {
            Ok(r) => r,
            Err(resp) => return resp,
        };
        let inner = &self.inner;
        // Scatter pairs to their owning shards, remembering where each
        // came from so the gather restores request order.
        let mut by_shard: Vec<(usize, Vec<usize>)> = Vec::new();
        for (pos, &(i, _j)) in req.pairs.iter().enumerate() {
            let Some(s) = inner
                .ring
                .owner_where(i as u64, |s| inner.shards[s].routable())
            else {
                obs::incr("router/no_shard_503");
                return Response::error(503, "no routable shard").with_header("retry-after", "1");
            };
            match by_shard.iter_mut().find(|(shard, _)| *shard == s) {
                Some((_, positions)) => positions.push(pos),
                None => by_shard.push((s, vec![pos])),
            }
        }
        let mut gathered: Vec<Option<Judgement>> = vec![None; req.pairs.len()];
        for (s, positions) in by_shard {
            let subset: Vec<(usize, usize)> = positions.iter().map(|&p| req.pairs[p]).collect();
            let body = serde_json::to_string(&SubBatch { pairs: subset }).expect("serializable");
            let upstream = match inner.proxy(s, "POST", "/judge_batch", Some(&body), &[]) {
                Ok(r) => r,
                Err(_) => {
                    return Response::error(503, "shard failed mid-batch")
                        .with_header("retry-after", "1")
                }
            };
            if upstream.status != 200 {
                return relay(upstream);
            }
            let parsed: BatchBody = match serde_json::from_str(&upstream.body) {
                Ok(b) => b,
                Err(e) => {
                    return Response::error(502, &format!("bad shard batch response: {e}"));
                }
            };
            if parsed.judgements.len() != positions.len() {
                return Response::error(502, "shard batch cardinality mismatch");
            }
            for (pos, judgement) in positions.into_iter().zip(parsed.judgements) {
                gathered[pos] = Some(judgement);
            }
        }
        let judgements: Vec<Judgement> = gathered
            .into_iter()
            .map(|j| j.expect("every position was scattered"))
            .collect();
        obs::incr("router/proxied");
        Response::json(
            200,
            serde_json::to_string(&BatchBody { judgements }).expect("serializable"),
        )
    }

    fn health(&self) -> Response {
        let inner = &self.inner;
        let up = inner
            .shards
            .iter()
            .filter(|s| s.up.load(Ordering::Relaxed))
            .count();
        let draining = inner
            .shards
            .iter()
            .filter(|s| s.draining.load(Ordering::Relaxed))
            .count();
        let generations = inner
            .shards
            .iter()
            .map(|s| s.generation.load(Ordering::Relaxed))
            .collect();
        Response::json(
            200,
            serde_json::to_string(&RouterHealth {
                status: if up > 0 { "ok" } else { "down" },
                role: "router",
                shards_total: inner.shards.len(),
                shards_up: up,
                shards_draining: draining,
                generations,
            })
            .expect("serializable"),
        )
    }

    fn set_draining(&self, body: &[u8], draining: bool) -> Response {
        let req: DrainRequest = match parse_body(body) {
            Ok(r) => r,
            Err(resp) => return resp,
        };
        let Some(shard) = self.inner.shards.get(req.shard) else {
            return Response::error(400, &format!("no shard {}", req.shard));
        };
        shard.draining.store(draining, Ordering::Relaxed);
        obs::incr(if draining {
            "router/drains"
        } else {
            "router/undrains"
        });
        Response::json(
            200,
            format!("{{\"shard\":{},\"draining\":{draining}}}", req.shard),
        )
    }

    /// Rolling reload: drain each shard, push `/reload` through it,
    /// undrain, move on. One shard is out of rotation at a time, so the
    /// cluster keeps answering throughout.
    fn rolling_reload(&self, body: &[u8]) -> Response {
        let model = if body.is_empty() {
            None
        } else {
            match parse_body::<ReloadRequest>(body) {
                Ok(r) => r.model,
                Err(resp) => return resp,
            }
        };
        let reload_body = match &model {
            Some(path) => format!(
                "{{\"model\":{}}}",
                serde_json::to_string(path).expect("strings serialize")
            ),
            None => String::new(),
        };
        let inner = &self.inner;
        let mut generations = Vec::with_capacity(inner.shards.len());
        for s in 0..inner.shards.len() {
            inner.shards[s].draining.store(true, Ordering::Relaxed);
            let result = inner.proxy(s, "POST", "/reload", Some(&reload_body), &[]);
            inner.shards[s].draining.store(false, Ordering::Relaxed);
            match result {
                Ok(r) if r.status == 200 => {
                    let generation = serde_json::from_str::<ReloadEcho>(&r.body)
                        .map(|e| e.generation)
                        .unwrap_or(0);
                    inner.shards[s]
                        .generation
                        .store(generation, Ordering::Relaxed);
                    generations.push(generation);
                }
                Ok(r) => return relay(r),
                Err(e) => return Response::error(500, &format!("reload of shard {s} failed: {e}")),
            }
        }
        obs::incr("router/rolling_reloads");
        let rendered: Vec<String> = generations.iter().map(|g| g.to_string()).collect();
        Response::json(200, format!("{{\"generations\":[{}]}}", rendered.join(",")))
    }
}

#[derive(Serialize)]
struct SubBatch {
    pairs: Vec<(usize, usize)>,
}

#[derive(Deserialize)]
struct ReloadEcho {
    generation: u64,
}

impl Service for RouterService {
    fn handle(&self, request: &Request) -> Response {
        let start = Instant::now();
        let response = match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => self.health(),
            ("GET", "/metrics") => Response::json(200, obs::snapshot().to_json()),
            ("POST", "/judge") | ("POST", "/candidates") => {
                match parse_body::<KeyedRequest>(&request.body) {
                    Ok(key) => self.forward(key.i as u64, request),
                    Err(resp) => resp,
                }
            }
            ("POST", "/judge_batch") => self.judge_batch(request),
            ("POST", "/drain") => self.set_draining(&request.body, true),
            ("POST", "/undrain") => self.set_draining(&request.body, false),
            ("POST", "/reload") => self.rolling_reload(&request.body),
            ("GET" | "POST", _) => Response::error(404, "no such endpoint"),
            _ => Response::error(405, "method not allowed"),
        };
        obs::incr("serve/requests");
        match response.status {
            400..=499 => obs::incr("serve/http_4xx"),
            500..=599 => obs::incr("serve/http_5xx"),
            _ => {}
        }
        obs::observe(
            "router/request_latency_ms",
            start.elapsed().as_secs_f64() * 1e3,
        );
        response
    }
}

fn parse_body<T: serde::Deserialize>(body: &[u8]) -> Result<T, Response> {
    let text =
        std::str::from_utf8(body).map_err(|_| Response::error(400, "request body is not UTF-8"))?;
    serde_json::from_str(text).map_err(|e| Response::error(400, &format!("bad request body: {e}")))
}

/// Turns an upstream response into the client-facing one: status and
/// body verbatim (byte-identity is the contract), plus the headers that
/// carry protocol meaning across the hop.
fn relay(upstream: crate::client::ClientResponse) -> Response {
    let mut response = Response::json(upstream.status, upstream.body.clone());
    for (name, value) in &upstream.headers {
        if name == "retry-after" || name.starts_with("x-hisrect-") {
            response = response.with_header(name, value);
        }
    }
    response
}

// ---------------------------------------------------------------------------
// Health poller + handle
// ---------------------------------------------------------------------------

#[derive(Deserialize)]
struct ShardHealth {
    generation: u64,
}

fn health_poll(inner: &RouterInner, interval: Duration) {
    while !inner.stop.load(Ordering::Relaxed) {
        for s in 0..inner.shards.len() {
            if inner.stop.load(Ordering::Relaxed) {
                return;
            }
            // Chaos trigger point: the poller sees a killed shard.
            if faultsim::fires(faultsim::FaultKind::ShardKill) {
                obs::incr("router/shard_kill_injected");
                inner.record(s, false);
                continue;
            }
            let mut client = inner.checkout(s);
            match client.get("/healthz") {
                Ok(r) if r.status == 200 => {
                    if let Ok(h) = serde_json::from_str::<ShardHealth>(&r.body) {
                        inner.shards[s]
                            .generation
                            .store(h.generation, Ordering::Relaxed);
                    }
                    inner.record(s, true);
                    inner.checkin(s, client);
                }
                Ok(_) | Err(_) => inner.record(s, false),
            }
        }
        // Sleep in small steps so shutdown never waits a full interval.
        let deadline = Instant::now() + interval;
        while Instant::now() < deadline {
            if inner.stop.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(Duration::from_millis(10).min(interval));
        }
    }
}

/// A running router. Dropping the handle shuts it down.
pub struct RouterHandle {
    addr: SocketAddr,
    inner: Arc<RouterInner>,
    event_loop: EventLoopHandle,
    health_thread: Option<JoinHandle<()>>,
}

impl RouterHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether shard `s` is currently routable (up and not draining).
    pub fn shard_routable(&self, s: usize) -> bool {
        self.inner.shards.get(s).is_some_and(Shard::routable)
    }

    /// Flips shard `s` in or out of the draining state.
    pub fn set_draining(&self, s: usize, draining: bool) {
        if let Some(shard) = self.inner.shards.get(s) {
            shard.draining.store(draining, Ordering::Relaxed);
        }
    }

    /// Stops the event loop and the health poller, joins all threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Blocks until the router exits (it only exits via shutdown).
    pub fn wait(mut self) {
        self.event_loop.wait();
    }

    fn stop_and_join(&mut self) {
        self.inner.stop.store(true, Ordering::Relaxed);
        self.event_loop.shutdown();
        if let Some(t) = self.health_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Binds `config.addr`, resolves every shard address, starts the proxy
/// event loop and the health poller, and returns immediately.
pub fn route(config: RouterConfig) -> std::io::Result<RouterHandle> {
    obs::set_enabled(true);
    event_loop::raise_nofile_limit();
    if config.shards.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "router needs at least one shard address",
        ));
    }
    let mut shards = Vec::with_capacity(config.shards.len());
    for spec in &config.shards {
        let addr: SocketAddr = spec.parse().map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("bad shard address `{spec}`: {e}"),
            )
        })?;
        shards.push(Shard {
            addr,
            up: AtomicBool::new(true),
            draining: AtomicBool::new(false),
            consecutive_failures: AtomicU32::new(0),
            generation: AtomicU64::new(0),
            pool: Mutex::new(Vec::new()),
        });
    }
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let inner = Arc::new(RouterInner {
        shards,
        ring: HashRing::new(config.shards.len(), config.vnodes),
        fail_threshold: config.fail_threshold.max(1),
        upstream_timeout: config.upstream_timeout,
        stop: AtomicBool::new(false),
    });
    let service = Arc::new(RouterService {
        inner: Arc::clone(&inner),
    });
    let event_loop = event_loop::start(
        listener,
        service,
        EventLoopConfig {
            workers: config.workers,
            queue_depth: config.queue_depth,
            limits: config.limits,
        },
    )?;
    let poll_inner = Arc::clone(&inner);
    let interval = config.health_interval;
    let health_thread = std::thread::Builder::new()
        .name("hisrect-health-poll".into())
        .spawn(move || health_poll(&poll_inner, interval))
        .expect("spawn health poller");
    Ok(RouterHandle {
        addr,
        inner,
        event_loop,
        health_thread: Some(health_thread),
    })
}
