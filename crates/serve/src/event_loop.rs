//! Hand-rolled epoll readiness loop — the I/O tier of the server.
//!
//! Dependency-free mio-style reactor (DESIGN.md §17): one thread owns an
//! epoll instance, the listening socket, and a slab of non-blocking
//! connections, each a [`crate::conn::Conn`] state machine. Fully framed
//! requests are handed to a compute worker pool over the bounded MPMC
//! channel; workers run the (blocking) handler — micro-batcher, admission
//! gate, breaker and all — and push the response back through a
//! completion queue, waking the loop via an `eventfd`. Concurrency is
//! therefore bounded by *connections held open* only on the loop side:
//! 10k idle keep-alive sockets cost 10k slab slots and one `epoll_wait`,
//! not 10k threads.
//!
//! Registration is level-triggered with a per-connection interest mask:
//! `EPOLLIN` while reading, nothing while a request is with the compute
//! pool (so a pipelining client cannot make the loop spin), `EPOLLOUT`
//! only while response bytes remain unflushed — the mio idiom of
//! re-registering on state transitions rather than edge-triggered
//! drain-to-EAGAIN bookkeeping (reads still drain to `WouldBlock`, so
//! switching to `EPOLLET` would only change the registration flags).
//!
//! The syscall surface (`epoll_create1`/`epoll_ctl`/`epoll_wait`/
//! `eventfd` plus `getrlimit`/`setrlimit`) is declared directly against
//! libc, which `std` already links — no crate dependency.

use crate::conn::{Conn, Phase, ReadOutcome};
use crate::http::{Limits, Request, Response};
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Syscall surface
// ---------------------------------------------------------------------------

#[allow(non_camel_case_types)]
mod sys {
    use std::os::raw::{c_int, c_uint};

    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EFD_CLOEXEC: c_int = 0o2000000;
    pub const EFD_NONBLOCK: c_int = 0o4000;
    pub const RLIMIT_NOFILE: c_int = 7;

    /// Mirrors glibc's `struct epoll_event`: packed on x86_64 (the
    /// kernel ABI packs the 64-bit payload after the 32-bit mask), the
    /// natural C layout elsewhere.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct epoll_event {
        pub events: u32,
        pub data: u64,
    }

    #[repr(C)]
    pub struct rlimit {
        pub rlim_cur: u64,
        pub rlim_max: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut epoll_event,
            maxevents: c_int,
            timeout_ms: c_int,
        ) -> c_int;
        pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
        pub fn getrlimit(resource: c_int, rlim: *mut rlimit) -> c_int;
        pub fn setrlimit(resource: c_int, rlim: *const rlimit) -> c_int;
    }
}

/// Raises the process's open-file soft limit to its hard limit (best
/// effort) and returns the resulting soft limit. 10k+ keep-alive
/// connections need the headroom; callers size tests and gates off the
/// returned value instead of assuming it.
pub fn raise_nofile_limit() -> u64 {
    unsafe {
        let mut lim = sys::rlimit {
            rlim_cur: 0,
            rlim_max: 0,
        };
        if sys::getrlimit(sys::RLIMIT_NOFILE, &mut lim) != 0 {
            return 1024;
        }
        if lim.rlim_cur < lim.rlim_max {
            let raised = sys::rlimit {
                rlim_cur: lim.rlim_max,
                rlim_max: lim.rlim_max,
            };
            if sys::setrlimit(sys::RLIMIT_NOFILE, &raised) == 0 {
                return raised.rlim_cur;
            }
        }
        lim.rlim_cur
    }
}

/// An owned epoll instance.
struct Epoll {
    fd: i32,
}

impl Epoll {
    fn new() -> std::io::Result<Self> {
        let fd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Self { fd })
    }

    fn ctl(&self, op: i32, fd: i32, events: u32, data: u64) -> std::io::Result<()> {
        let mut ev = sys::epoll_event { events, data };
        let rc = unsafe { sys::epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(())
    }

    fn add(&self, fd: i32, events: u32, data: u64) -> std::io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, events, data)
    }

    fn modify(&self, fd: i32, events: u32, data: u64) -> std::io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, events, data)
    }

    fn wait(&self, events: &mut [sys::epoll_event], timeout: Duration) -> usize {
        let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
        let n = unsafe { sys::epoll_wait(self.fd, events.as_mut_ptr(), events.len() as i32, ms) };
        // EINTR and transient errors surface as an empty batch; the loop
        // just waits again.
        if n < 0 {
            0
        } else {
            n as usize
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { sys::close(self.fd) };
    }
}

/// The wakeup channel: workers write the counter, the loop drains it.
struct EventFd {
    fd: i32,
}

impl EventFd {
    fn new() -> std::io::Result<Self> {
        let fd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Self { fd })
    }

    fn wake(&self) {
        let one: u64 = 1;
        unsafe { sys::write(self.fd, (&one as *const u64).cast(), 8) };
    }

    fn drain(&self) {
        let mut buf = [0u8; 8];
        unsafe { sys::read(self.fd, buf.as_mut_ptr(), 8) };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        unsafe { sys::close(self.fd) };
    }
}

// ---------------------------------------------------------------------------
// Service contract
// ---------------------------------------------------------------------------

/// What the compute tier does with a framed request. The shard server
/// and the router both plug in here; the event loop stays protocol-only.
pub trait Service: Send + Sync + 'static {
    /// Handles one request. Runs on a compute worker thread and may
    /// block (the shard handler waits on the micro-batcher).
    fn handle(&self, request: &Request) -> Response;

    /// The answer when the dispatch queue is full — backpressure at the
    /// door, served from the loop thread without touching a worker.
    fn overloaded(&self) -> Response {
        Response::error(503, "dispatch queue full").with_header("retry-after", "1")
    }
}

// ---------------------------------------------------------------------------
// The loop
// ---------------------------------------------------------------------------

/// Event-loop tuning.
#[derive(Debug, Clone)]
pub struct EventLoopConfig {
    /// Compute worker threads behind the loop.
    pub workers: usize,
    /// Bound on requests queued for the compute pool.
    pub queue_depth: usize,
    /// Framing limits + read timeout (also the keep-alive idle timeout).
    pub limits: Limits,
}

struct Job {
    token: u64,
    seq: u32,
    request: Request,
}

struct Done {
    token: u64,
    seq: u32,
    response: Response,
    keep_alive: bool,
}

/// Slab slot: the connection plus a reuse generation (the high half of
/// the epoll token), so stale events or completions for a recycled slot
/// are recognized and dropped.
struct Slot {
    conn: Conn,
    gen: u32,
}

const TOKEN_LISTENER: u64 = u64::MAX;
const TOKEN_WAKE: u64 = u64::MAX - 1;

fn token(idx: usize, gen: u32) -> u64 {
    ((gen as u64) << 32) | idx as u64
}

struct LoopState {
    epoll: Epoll,
    listener: TcpListener,
    wake: Arc<EventFd>,
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
    next_gen: u32,
    limits: Limits,
    jobs: Arc<parallel::Channel<Job>>,
    completions: Arc<Mutex<VecDeque<Done>>>,
    service: Arc<dyn Service>,
    stop: Arc<AtomicBool>,
}

/// A running event loop. [`EventLoopHandle::shutdown`] stops the loop,
/// closes every connection, and joins the compute pool.
pub struct EventLoopHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    wake: Arc<EventFd>,
    jobs: Arc<parallel::Channel<Job>>,
    loop_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

// The raw eventfd is only ever read/written through &self.
unsafe impl Send for EventFd {}
unsafe impl Sync for EventFd {}

impl EventLoopHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the loop, closes all connections, joins every thread.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        self.wake.wake();
        if let Some(t) = self.loop_thread.take() {
            let _ = t.join();
        }
        self.jobs.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// Blocks until the loop exits (it only exits via shutdown).
    pub fn wait(&mut self) {
        if let Some(t) = self.loop_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for EventLoopHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds nothing itself: takes an already bound listener, spawns the
/// compute pool and the loop thread, and returns immediately.
pub fn start(
    listener: TcpListener,
    service: Arc<dyn Service>,
    config: EventLoopConfig,
) -> std::io::Result<EventLoopHandle> {
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let epoll = Epoll::new()?;
    let wake = Arc::new(EventFd::new()?);
    epoll.add(listener.as_raw_fd(), sys::EPOLLIN, TOKEN_LISTENER)?;
    epoll.add(wake.fd, sys::EPOLLIN, TOKEN_WAKE)?;

    let jobs: Arc<parallel::Channel<Job>> =
        Arc::new(parallel::Channel::bounded(config.queue_depth.max(1)));
    let completions: Arc<Mutex<VecDeque<Done>>> = Arc::new(Mutex::new(VecDeque::new()));
    let stop = Arc::new(AtomicBool::new(false));

    let workers = (0..config.workers.max(1))
        .map(|k| {
            let jobs = Arc::clone(&jobs);
            let completions = Arc::clone(&completions);
            let service = Arc::clone(&service);
            let wake = Arc::clone(&wake);
            std::thread::Builder::new()
                .name(format!("hisrect-compute-{k}"))
                .spawn(move || {
                    while let Some(job) = jobs.recv() {
                        let keep_alive = job.request.keep_alive;
                        let response = service.handle(&job.request);
                        completions
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .push_back(Done {
                                token: job.token,
                                seq: job.seq,
                                response,
                                keep_alive,
                            });
                        wake.wake();
                    }
                })
                .expect("spawn compute worker")
        })
        .collect();

    let state = LoopState {
        epoll,
        listener,
        wake: Arc::clone(&wake),
        slots: Vec::new(),
        free: Vec::new(),
        next_gen: 1,
        limits: config.limits,
        jobs: Arc::clone(&jobs),
        completions,
        service,
        stop: Arc::clone(&stop),
    };
    let loop_thread = std::thread::Builder::new()
        .name("hisrect-event-loop".into())
        .spawn(move || run(state))
        .expect("spawn event loop");

    Ok(EventLoopHandle {
        addr,
        stop,
        wake,
        jobs,
        loop_thread: Some(loop_thread),
        workers,
    })
}

/// Granularity of the idle/timeout scan. Coarse on purpose: scanning n
/// connections every tick is O(n), and 408 precision only needs to be
/// within a tick of `Limits::read_timeout`.
const SCAN_INTERVAL: Duration = Duration::from_millis(50);

fn run(mut st: LoopState) {
    let mut events = vec![sys::epoll_event { events: 0, data: 0 }; 1024];
    let mut last_scan = Instant::now();
    loop {
        let n = st.epoll.wait(&mut events, SCAN_INTERVAL);
        if st.stop.load(Ordering::Relaxed) {
            return; // slots drop, closing every fd
        }
        for ev in &events[..n] {
            let (mask, data) = (ev.events, ev.data);
            match data {
                TOKEN_LISTENER => accept_ready(&mut st),
                TOKEN_WAKE => {
                    st.wake.drain();
                    drain_completions(&mut st);
                }
                tok => conn_ready(&mut st, tok, mask),
            }
        }
        // Completions can also arrive while the loop is mid-batch; a
        // missed wake is impossible (eventfd counts), but drain cheaply
        // anyway so responses never wait a full tick.
        drain_completions(&mut st);
        if last_scan.elapsed() >= SCAN_INTERVAL {
            scan_timeouts(&mut st);
            last_scan = Instant::now();
        }
    }
}

fn accept_ready(st: &mut LoopState) {
    loop {
        match st.listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                obs::incr("serve/connections");
                let idx = match st.free.pop() {
                    Some(i) => i,
                    None => {
                        st.slots.push(None);
                        st.slots.len() - 1
                    }
                };
                let gen = st.next_gen;
                st.next_gen = st.next_gen.wrapping_add(1);
                let fd = stream.as_raw_fd();
                let conn = Conn::new(stream);
                st.slots[idx] = Some(Slot { conn, gen });
                if st
                    .epoll
                    .add(fd, sys::EPOLLIN | sys::EPOLLRDHUP, token(idx, gen))
                    .is_err()
                {
                    st.slots[idx] = None;
                    st.free.push(idx);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            // Transient accept errors (EMFILE under fd pressure, peer
            // reset in the backlog): skip and keep serving.
            Err(_) => return,
        }
    }
}

fn slot_mut(slots: &mut [Option<Slot>], tok: u64) -> Option<(usize, &mut Slot)> {
    let idx = (tok & 0xFFFF_FFFF) as usize;
    let gen = (tok >> 32) as u32;
    match slots.get_mut(idx) {
        Some(Some(slot)) if slot.gen == gen => Some((idx, slot)),
        _ => None,
    }
}

fn conn_ready(st: &mut LoopState, tok: u64, mask: u32) {
    let idx = (tok & 0xFFFF_FFFF) as usize;
    let gen = (tok >> 32) as u32;
    let alive = matches!(st.slots.get(idx), Some(Some(slot)) if slot.gen == gen);
    if !alive {
        return; // stale event for a recycled slot
    }
    if mask & (sys::EPOLLERR | sys::EPOLLHUP) != 0 {
        close_conn(st, idx);
        return;
    }
    advance(st, idx, mask);
}

/// Drives one connection's state machine until it blocks, parks on the
/// compute pool, or closes.
fn advance(st: &mut LoopState, idx: usize, mask: u32) {
    loop {
        let Some(slot) = st.slots[idx].as_mut() else {
            return;
        };
        match slot.conn.phase {
            Phase::Reading => {
                // Only read when the kernel said readable (or we just
                // finished a response and are re-checking buffered bytes).
                let outcome = if mask & sys::EPOLLIN != 0 {
                    slot.conn.on_readable(&st.limits)
                } else {
                    match slot.conn.try_frame(&st.limits) {
                        Some(o) => o,
                        None => {
                            set_interest(st, idx, sys::EPOLLIN | sys::EPOLLRDHUP);
                            return;
                        }
                    }
                };
                match outcome {
                    ReadOutcome::Dispatch(request) => {
                        dispatch(st, idx, request);
                        return;
                    }
                    ReadOutcome::Continue => {
                        let Some(slot) = st.slots[idx].as_mut() else {
                            return;
                        };
                        if slot.conn.phase == Phase::Writing {
                            continue; // a parse error queued a response
                        }
                        set_interest(st, idx, sys::EPOLLIN | sys::EPOLLRDHUP);
                        return;
                    }
                    ReadOutcome::Close => {
                        close_conn(st, idx);
                        return;
                    }
                }
            }
            Phase::Writing => {
                if slot.conn.on_writable().is_err() {
                    close_conn(st, idx);
                    return;
                }
                let Some(slot) = st.slots[idx].as_mut() else {
                    return;
                };
                match slot.conn.phase {
                    Phase::Closed => {
                        close_conn(st, idx);
                        return;
                    }
                    Phase::Writing => {
                        // Partial write: wait for EPOLLOUT (without
                        // EPOLLRDHUP — a half-closed peer that still
                        // reads must not spin the loop).
                        set_interest(st, idx, sys::EPOLLOUT);
                        return;
                    }
                    // Response drained, keep-alive: fall through to
                    // Reading and re-offer buffered pipelined bytes.
                    _ => continue,
                }
            }
            Phase::Busy => {
                // Nothing to do until the worker answers; interest is
                // already cleared.
                return;
            }
            Phase::Closed => {
                close_conn(st, idx);
                return;
            }
        }
    }
}

fn dispatch(st: &mut LoopState, idx: usize, request: Request) {
    let Some(slot) = st.slots[idx].as_mut() else {
        return;
    };
    let seq = slot.conn.seq;
    let gen = slot.gen;
    let keep_alive = request.keep_alive;
    // Park the socket while the request is in flight: no reads (a
    // pipelining client must wait), no writes yet. Zero interest also
    // avoids a level-triggered EPOLLRDHUP re-firing every wait if the
    // peer half-closes mid-request; ERR/HUP are always reported anyway.
    set_interest(st, idx, 0);
    match st.jobs.try_send(Job {
        token: token(idx, gen),
        seq,
        request,
    }) {
        Ok(()) => {}
        Err(parallel::TrySendError::Full(_)) => {
            // Backpressure at the door, answered from the loop thread.
            obs::incr("serve/backpressure_503");
            obs::incr("serve/http_5xx");
            let response = st.service.overloaded();
            if let Some(slot) = st.slots[idx].as_mut() {
                slot.conn.queue_response(&response, keep_alive);
            }
            advance(st, idx, sys::EPOLLOUT);
        }
        Err(parallel::TrySendError::Closed(_)) => {
            close_conn(st, idx);
        }
    }
}

fn drain_completions(st: &mut LoopState) {
    loop {
        let done = {
            let mut q = st.completions.lock().unwrap_or_else(|e| e.into_inner());
            q.pop_front()
        };
        let Some(done) = done else { return };
        let Some((idx, slot)) = slot_mut(&mut st.slots, done.token) else {
            continue; // connection died while the worker was busy
        };
        if slot.conn.seq != done.seq || slot.conn.phase != Phase::Busy {
            continue; // stale completion
        }
        slot.conn.queue_response(&done.response, done.keep_alive);
        advance(st, idx, sys::EPOLLOUT);
    }
}

fn scan_timeouts(st: &mut LoopState) {
    let timeout = st.limits.read_timeout;
    let now = Instant::now();
    let mut expired: Vec<(usize, bool)> = Vec::new();
    for (idx, slot) in st.slots.iter().enumerate() {
        let Some(slot) = slot else { continue };
        let idle = now.duration_since(slot.conn.last_activity);
        match slot.conn.phase {
            // A worker owns the request; its own 10s bound applies.
            Phase::Busy => {}
            Phase::Reading => {
                if idle > timeout {
                    expired.push((idx, slot.conn.request_started()));
                }
            }
            // A peer that will not drain its response (slow-loris
            // reader) gets the same clock.
            Phase::Writing | Phase::Closed => {
                if idle > timeout {
                    expired.push((idx, false));
                }
            }
        }
    }
    for (idx, started) in expired {
        if started {
            // Mid-request stall ⇒ typed 408 then close, matching the
            // blocking path's contract.
            obs::incr("serve/http_4xx");
            if let Some(slot) = st.slots[idx].as_mut() {
                slot.conn
                    .queue_response(&Response::error(408, "timed out reading request"), false);
            }
            advance(st, idx, sys::EPOLLOUT);
        } else {
            // Idle keep-alive (or a dead writer): silent close.
            close_conn(st, idx);
        }
    }
}

fn set_interest(st: &mut LoopState, idx: usize, events: u32) {
    let Some(slot) = st.slots[idx].as_ref() else {
        return;
    };
    let fd = slot.conn.stream.as_raw_fd();
    let tok = token(idx, slot.gen);
    let _ = st.epoll.modify(fd, events, tok);
}

fn close_conn(st: &mut LoopState, idx: usize) {
    if let Some(slot) = st.slots[idx].take() {
        // Dropping the stream closes the fd, which also removes it from
        // the epoll set; the explicit DEL keeps the set tidy when the fd
        // has been dup'd elsewhere (it never is today).
        let _ = st
            .epoll
            .ctl(sys::EPOLL_CTL_DEL, slot.conn.stream.as_raw_fd(), 0, 0);
        drop(slot);
        st.free.push(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nofile_limit_is_queryable_and_raisable() {
        let lim = raise_nofile_limit();
        assert!(lim >= 256, "suspiciously low fd limit: {lim}");
        // Idempotent: already at the hard limit now.
        assert_eq!(raise_nofile_limit(), lim);
    }

    #[test]
    fn token_round_trips() {
        let t = token(7, 42);
        assert_eq!((t & 0xFFFF_FFFF) as usize, 7);
        assert_eq!((t >> 32) as u32, 42);
    }
}
