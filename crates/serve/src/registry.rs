//! Model registry with atomic hot-reload.
//!
//! Handlers grab an `Arc<LoadedModel>` once per request; `POST /reload`
//! swaps the pointer under a write lock, so in-flight requests finish on
//! the snapshot they started with and new requests see the new model
//! immediately. Each load gets a fresh *generation* number, which the
//! feature cache folds into its keys.

use hisrect::{CandidateService, JudgeService, ModelError, Precision};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use twitter_sim::Dataset;

/// One loaded model snapshot.
pub struct LoadedModel {
    /// The judgement pipeline over this snapshot.
    pub service: JudgeService,
    /// The candidate-retrieval index over this snapshot's embeddings.
    /// Rebuilt on every (re)load and swapped atomically with the service,
    /// so a query racing `/reload` sees one coherent generation — never a
    /// new model scoring an old index.
    pub candidates: CandidateService,
    /// Monotonic load counter; generation 1 is the startup load.
    pub generation: u64,
    /// Where the snapshot was read from.
    pub path: PathBuf,
}

/// Registry holding the currently served model.
pub struct ModelRegistry {
    current: RwLock<Arc<LoadedModel>>,
    next_generation: AtomicU64,
    /// The corpus whose profiles requests address by index.
    corpus: Arc<Dataset>,
    /// Inference precision applied to every load, reloads included — the
    /// snapshot on disk is always f32; quantization happens at load.
    precision: Precision,
}

impl ModelRegistry {
    /// Loads the startup snapshot at f32. The corpus provides both the
    /// POI universe the featurizer needs and the profiles requests
    /// reference.
    pub fn load(model_path: &Path, corpus: Arc<Dataset>) -> Result<Self, ModelError> {
        Self::load_with_precision(model_path, corpus, Precision::F32)
    }

    /// [`ModelRegistry::load`] at an explicit inference precision, which
    /// then sticks across every `/reload`.
    pub fn load_with_precision(
        model_path: &Path,
        corpus: Arc<Dataset>,
        precision: Precision,
    ) -> Result<Self, ModelError> {
        let service =
            JudgeService::load_with_precision(model_path, corpus.world.pois.clone(), precision)?;
        let candidates = CandidateService::build(&service, &corpus);
        let loaded = Arc::new(LoadedModel {
            service,
            candidates,
            generation: 1,
            path: model_path.to_path_buf(),
        });
        Ok(Self {
            current: RwLock::new(loaded),
            next_generation: AtomicU64::new(2),
            corpus,
            precision,
        })
    }

    /// The precision every load of this registry serves at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The currently served snapshot.
    pub fn current(&self) -> Arc<LoadedModel> {
        Arc::clone(&self.current.read().expect("registry poisoned"))
    }

    /// The corpus requests address profiles in.
    pub fn corpus(&self) -> &Arc<Dataset> {
        &self.corpus
    }

    /// Reloads the model — from `path` if given, else from wherever the
    /// current snapshot came from — and atomically swaps it in. On error
    /// the current model keeps serving. Returns the new generation.
    pub fn reload(&self, path: Option<&Path>) -> Result<u64, ModelError> {
        let source = match path {
            Some(p) => p.to_path_buf(),
            None => self.current().path.clone(),
        };
        let service = JudgeService::load_with_precision(
            &source,
            self.corpus.world.pois.clone(),
            self.precision,
        )?;
        let candidates = CandidateService::build(&service, &self.corpus);
        let generation = self.next_generation.fetch_add(1, Ordering::Relaxed);
        let loaded = Arc::new(LoadedModel {
            service,
            candidates,
            generation,
            path: source,
        });
        *self.current.write().expect("registry poisoned") = loaded;
        obs::incr("serve/model_reloads");
        Ok(generation)
    }
}
