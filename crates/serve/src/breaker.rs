//! Circuit breaker around the learned-judge path.
//!
//! The classic three-state machine:
//!
//! ```text
//!            consecutive failures ≥ threshold
//!   CLOSED ─────────────────────────────────────▶ OPEN
//!     ▲                                            │ cooldown elapsed
//!     │ probe succeeds                             ▼
//!     └───────────────────────────────────── HALF-OPEN
//!                 probe fails ──▶ OPEN (fresh cooldown)
//! ```
//!
//! A "failure" is either a hard error from the learned path (worker
//! panic, batcher timeout) or a success that blew the per-request latency
//! budget — a judge that answers correctly but far too slowly is just as
//! broken for the caller. While OPEN every request is told to degrade
//! (heuristic fallback / stale cache read) instead of queueing behind a
//! sick model; once the cooldown elapses exactly one request is admitted
//! as the HALF-OPEN probe, and its outcome alone decides between closing
//! the circuit and another full cooldown.
//!
//! With the default threshold the breaker is effectively invisible on a
//! healthy server: it only ever observes successes and stays CLOSED.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Tunables of the breaker.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive learned-path failures that trip CLOSED → OPEN.
    pub failure_threshold: u32,
    /// How long the circuit stays OPEN before a probe is allowed.
    pub cooldown: Duration,
    /// Per-request latency budget; a slower success counts as a failure.
    pub latency_budget: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 5,
            cooldown: Duration::from_secs(1),
            latency_budget: Duration::from_secs(5),
        }
    }
}

/// The breaker's observable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Learned path healthy; all traffic goes through it.
    Closed,
    /// Learned path sick; all traffic degrades until the cooldown ends.
    Open,
    /// One probe is in flight; everyone else still degrades.
    HalfOpen,
}

impl BreakerState {
    /// Lower-case label used in `/healthz` and metrics.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// What the breaker tells a request to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerDecision {
    /// Circuit closed: use the learned path normally.
    Learned,
    /// Circuit half-open and this request won the probe slot: use the
    /// learned path, and its outcome decides the circuit's fate.
    Probe,
    /// Circuit open: serve a degraded verdict, do not touch the model.
    Degraded,
}

struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    /// True while the single half-open probe is in flight.
    probe_inflight: bool,
}

/// The breaker itself. One per server; shared by every worker thread.
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    inner: Mutex<BreakerInner>,
}

impl CircuitBreaker {
    /// A closed breaker under `cfg`.
    pub fn new(cfg: BreakerConfig) -> Self {
        Self {
            cfg,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
                probe_inflight: false,
            }),
        }
    }

    /// The configuration the breaker runs under.
    pub fn config(&self) -> &BreakerConfig {
        &self.cfg
    }

    /// The current state (for `/healthz` and tests).
    pub fn state(&self) -> BreakerState {
        self.inner.lock().expect("breaker poisoned").state
    }

    /// Routes one request: learned path, the half-open probe slot, or
    /// degraded service. Called before submitting to the batcher.
    pub fn admit_learned(&self) -> BreakerDecision {
        let mut inner = self.inner.lock().expect("breaker poisoned");
        match inner.state {
            BreakerState::Closed => BreakerDecision::Learned,
            BreakerState::HalfOpen => {
                if inner.probe_inflight {
                    BreakerDecision::Degraded
                } else {
                    inner.probe_inflight = true;
                    BreakerDecision::Probe
                }
            }
            BreakerState::Open => {
                let cooled = inner
                    .opened_at
                    .is_some_and(|t| t.elapsed() >= self.cfg.cooldown);
                if cooled {
                    inner.state = BreakerState::HalfOpen;
                    inner.probe_inflight = true;
                    obs::incr("serve/breaker_half_open");
                    BreakerDecision::Probe
                } else {
                    BreakerDecision::Degraded
                }
            }
        }
    }

    /// Reports a learned-path success that took `latency`. Over-budget
    /// successes are failures in disguise.
    pub fn record_success(&self, latency: Duration) {
        if latency > self.cfg.latency_budget {
            self.record_failure();
            return;
        }
        let mut inner = self.inner.lock().expect("breaker poisoned");
        inner.consecutive_failures = 0;
        match inner.state {
            BreakerState::HalfOpen => {
                inner.state = BreakerState::Closed;
                inner.probe_inflight = false;
                inner.opened_at = None;
                obs::incr("serve/breaker_close");
            }
            BreakerState::Closed => {}
            // A straggler success from before the trip: the circuit stays
            // open until its own probe says otherwise.
            BreakerState::Open => {}
        }
    }

    /// Reports a learned-path failure (error, timeout, or blown budget).
    pub fn record_failure(&self) {
        let mut inner = self.inner.lock().expect("breaker poisoned");
        match inner.state {
            BreakerState::HalfOpen => {
                // The probe failed: back to a full cooldown.
                inner.state = BreakerState::Open;
                inner.probe_inflight = false;
                inner.opened_at = Some(Instant::now());
                inner.consecutive_failures = 0;
                obs::incr("serve/breaker_open");
            }
            BreakerState::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.cfg.failure_threshold {
                    inner.state = BreakerState::Open;
                    inner.opened_at = Some(Instant::now());
                    inner.consecutive_failures = 0;
                    obs::incr("serve/breaker_open");
                }
            }
            BreakerState::Open => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(20),
            latency_budget: Duration::from_millis(100),
        })
    }

    #[test]
    fn stays_closed_under_success() {
        let b = quick();
        for _ in 0..100 {
            assert_eq!(b.admit_learned(), BreakerDecision::Learned);
            b.record_success(Duration::from_millis(1));
        }
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn trips_after_consecutive_failures_only() {
        let b = quick();
        b.record_failure();
        b.record_failure();
        b.record_success(Duration::from_millis(1)); // resets the streak
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.admit_learned(), BreakerDecision::Degraded);
    }

    #[test]
    fn over_budget_success_counts_as_failure() {
        let b = quick();
        for _ in 0..3 {
            b.record_success(Duration::from_millis(500));
        }
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn half_open_admits_exactly_one_probe() {
        let b = quick();
        for _ in 0..3 {
            b.record_failure();
        }
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(b.admit_learned(), BreakerDecision::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Every other request degrades while the probe is in flight.
        assert_eq!(b.admit_learned(), BreakerDecision::Degraded);
        assert_eq!(b.admit_learned(), BreakerDecision::Degraded);
    }

    #[test]
    fn probe_success_closes_probe_failure_reopens() {
        let b = quick();
        for _ in 0..3 {
            b.record_failure();
        }
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(b.admit_learned(), BreakerDecision::Probe);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(
            b.admit_learned(),
            BreakerDecision::Degraded,
            "cooldown restarted"
        );

        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(b.admit_learned(), BreakerDecision::Probe);
        b.record_success(Duration::from_millis(1));
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit_learned(), BreakerDecision::Learned);
    }
}
