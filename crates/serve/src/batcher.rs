//! Request micro-batcher.
//!
//! Concurrent `/judge` requests are coalesced into one batched forward
//! pass through the judge MLP: the batcher thread pulls the first queued
//! job, then keeps collecting until the batch is full or the flush
//! deadline passes. `tensor`'s blocked matmul accumulates each output row
//! independently of the batch row count, so a batched row is bit-identical
//! to the single-pair judgement — batching changes latency, never answers.
//!
//! The queue is bounded; a full queue surfaces as backpressure
//! ([`SubmitError::Overloaded`] → 503 + `Retry-After`) instead of
//! unbounded memory growth.

use crate::registry::LoadedModel;
use parallel::{Channel, RecvTimeout, TrySendError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Bucket labels of the batch-size distribution, smallest first. Also
/// the suffixes of the `serve/batch_bucket_*` obs counters, so external
/// scrapers (loadgen) recover the same distribution from `/metrics`.
pub const BATCH_BUCKET_LABELS: [&str; 6] = ["1", "2", "3_4", "5_8", "9_16", "17plus"];

fn bucket_index(batch_len: usize) -> usize {
    match batch_len {
        0 | 1 => 0,
        2 => 1,
        3..=4 => 2,
        5..=8 => 3,
        9..=16 => 4,
        _ => 5,
    }
}

/// Flush accounting, readable while the batcher runs.
#[derive(Default)]
pub struct BatchStats {
    /// Batched forward passes flushed.
    pub batches: AtomicU64,
    /// Judge jobs across all flushed batches.
    pub jobs: AtomicU64,
    /// Flushes per batch-size bucket (see [`BATCH_BUCKET_LABELS`]).
    pub size_buckets: [AtomicU64; 6],
}

impl BatchStats {
    /// Mean jobs per flushed batch so far (0.0 before the first flush).
    pub fn mean_batch_size(&self) -> f64 {
        let batches = self.batches.load(Ordering::Relaxed);
        if batches == 0 {
            return 0.0;
        }
        self.jobs.load(Ordering::Relaxed) as f64 / batches as f64
    }

    /// The batch-size distribution as `(bucket label, flush count)`
    /// pairs, smallest bucket first.
    pub fn size_distribution(&self) -> Vec<(&'static str, u64)> {
        BATCH_BUCKET_LABELS
            .iter()
            .zip(&self.size_buckets)
            .map(|(&label, count)| (label, count.load(Ordering::Relaxed)))
            .collect()
    }
}

/// One queued judgement: cached features for both profiles plus the
/// snapshot to judge them with and the channel to answer on.
pub struct JudgeJob {
    /// Model snapshot this request resolved its features against.
    pub model: Arc<LoadedModel>,
    /// `F(ri)`.
    pub fa: Arc<Vec<f32>>,
    /// `F(rj)`.
    pub fb: Arc<Vec<f32>>,
    /// Where the probability (or a failure note) is delivered.
    pub responder: SyncSender<Result<f32, String>>,
}

/// Why a job could not be enqueued.
#[derive(Debug)]
pub enum SubmitError {
    /// Queue full — the client should back off and retry.
    Overloaded,
    /// The batcher has shut down.
    Closed,
}

/// The micro-batcher: a bounded queue plus one flusher thread.
pub struct Batcher {
    queue: Arc<Channel<JudgeJob>>,
    stats: Arc<BatchStats>,
    thread: Option<JoinHandle<()>>,
}

impl Batcher {
    /// Spawns the flusher. `batch_size` is the flush-on-size threshold,
    /// `deadline` the flush-on-time threshold measured from the first job
    /// of a batch, `queue_depth` the backpressure bound.
    pub fn new(batch_size: usize, deadline: Duration, queue_depth: usize) -> Self {
        let queue = Arc::new(Channel::bounded(queue_depth.max(1)));
        let stats = Arc::new(BatchStats::default());
        let batch_size = batch_size.max(1);
        let worker_queue = Arc::clone(&queue);
        let worker_stats = Arc::clone(&stats);
        let thread = std::thread::Builder::new()
            .name("hisrect-batcher".into())
            .spawn(move || run(&worker_queue, &worker_stats, batch_size, deadline))
            .expect("spawn batcher thread");
        Self {
            queue,
            stats,
            thread: Some(thread),
        }
    }

    /// Flush accounting so far.
    pub fn stats(&self) -> &BatchStats {
        &self.stats
    }

    /// Enqueues a job without blocking.
    pub fn submit(&self, job: JudgeJob) -> Result<(), SubmitError> {
        match self.queue.try_send(job) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => {
                obs::incr("serve/backpressure_503");
                Err(SubmitError::Overloaded)
            }
            Err(TrySendError::Closed(_)) => Err(SubmitError::Closed),
        }
    }

    /// Closes the queue and joins the flusher (drains queued jobs first).
    pub fn shutdown(&mut self) {
        self.queue.close();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn run(queue: &Channel<JudgeJob>, stats: &BatchStats, batch_size: usize, deadline: Duration) {
    loop {
        // Block for the batch's first job.
        let Some(first) = queue.recv() else {
            return; // closed and drained
        };
        let flush_at = Instant::now() + deadline;
        let mut batch = vec![first];
        let mut closed = false;
        while batch.len() < batch_size {
            let left = flush_at.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            match queue.recv_timeout(left) {
                RecvTimeout::Item(job) => batch.push(job),
                RecvTimeout::TimedOut => break,
                RecvTimeout::Closed => {
                    closed = true;
                    break;
                }
            }
        }
        flush(batch, stats);
        if closed {
            return;
        }
    }
}

/// Judges one collected batch. Jobs are grouped by model generation so a
/// hot-reload mid-batch never mixes snapshots in one forward pass.
fn flush(batch: Vec<JudgeJob>, stats: &BatchStats) {
    stats.batches.fetch_add(1, Ordering::Relaxed);
    stats.jobs.fetch_add(batch.len() as u64, Ordering::Relaxed);
    let bucket = bucket_index(batch.len());
    stats.size_buckets[bucket].fetch_add(1, Ordering::Relaxed);
    obs::incr("serve/batches");
    obs::add("serve/batched_requests", batch.len() as u64);
    obs::observe("serve/batch_size", batch.len() as f64);
    // obs counters want 'static names; one per bucket, aligned with
    // BATCH_BUCKET_LABELS.
    const BUCKET_COUNTERS: [&str; 6] = [
        "serve/batch_bucket_1",
        "serve/batch_bucket_2",
        "serve/batch_bucket_3_4",
        "serve/batch_bucket_5_8",
        "serve/batch_bucket_9_16",
        "serve/batch_bucket_17plus",
    ];
    obs::incr(BUCKET_COUNTERS[bucket]);

    let mut groups: Vec<(u64, Vec<JudgeJob>)> = Vec::new();
    for job in batch {
        let generation = job.model.generation;
        match groups.iter_mut().find(|(g, _)| *g == generation) {
            Some((_, jobs)) => jobs.push(job),
            None => groups.push((generation, vec![job])),
        }
    }

    for (_, jobs) in groups {
        let service = &jobs[0].model.service;
        let pairs: Vec<(&[f32], &[f32])> = jobs
            .iter()
            .map(|j| (j.fa.as_slice(), j.fb.as_slice()))
            .collect();
        let result = catch_unwind(AssertUnwindSafe(|| service.judge_features_batch(&pairs)));
        match result {
            Ok(probs) => {
                for (job, p) in jobs.iter().zip(probs) {
                    let _ = job.responder.send(Ok(p));
                }
            }
            Err(_) => {
                obs::incr("serve/batch_panic");
                for job in &jobs {
                    let _ = job.responder.send(Err("judge batch panicked".to_string()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Batcher plumbing without a real model is exercised indirectly via
    // the server integration tests; here we only check the backpressure
    // contract, which needs no model at all.
    #[test]
    fn full_queue_reports_overloaded() {
        // A batcher whose flusher is effectively stalled: batch_size 1
        // with a huge queue keeps draining, so instead test the raw
        // channel bound the submit path relies on.
        let q: Channel<u32> = Channel::bounded(2);
        q.try_send(1).unwrap();
        q.try_send(2).unwrap();
        assert!(matches!(q.try_send(3), Err(TrySendError::Full(3))));
    }
}
