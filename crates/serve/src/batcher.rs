//! Request micro-batcher.
//!
//! Concurrent `/judge` requests are coalesced into one batched forward
//! pass through the judge MLP: the flusher thread pulls the first queued
//! job, then keeps collecting until the batch is full or the flush
//! deadline passes. `tensor`'s blocked matmul accumulates each output row
//! independently of the batch row count, so a batched row is bit-identical
//! to the single-pair judgement — batching changes latency, never answers.
//!
//! The queue is bounded; a full queue surfaces as backpressure
//! ([`SubmitError::Overloaded`] → 503 + `Retry-After`) instead of
//! unbounded memory growth.
//!
//! Overload protection hooks:
//!
//! - Every job carries its request **deadline**; a collected job whose
//!   deadline already passed is answered [`JobError::Expired`] *before*
//!   the forward pass — no GEMM cycles are spent on an answer nobody is
//!   waiting for. Shutdown drains the queue the same way, so queued
//!   expired jobs get their typed answer instead of a dropped channel.
//! - Each flush reports its size to the [`AdmissionGate`] drain-rate
//!   estimator, which prices the adaptive `Retry-After` hint.
//! - The flusher bumps a **heartbeat** counter every iteration; the
//!   watchdog reads it (together with the queue length) to detect a
//!   stalled flusher and [`Batcher::restart`]s it in place: a replacement
//!   thread takes over the same queue and the superseded thread exits at
//!   its next generation check without holding any job.

use crate::admission::AdmissionGate;
use crate::registry::LoadedModel;
use parallel::{Channel, RecvTimeout, TrySendError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Bucket labels of the batch-size distribution, smallest first. Also
/// the suffixes of the `serve/batch_bucket_*` obs counters, so external
/// scrapers (loadgen) recover the same distribution from `/metrics`.
pub const BATCH_BUCKET_LABELS: [&str; 6] = ["1", "2", "3_4", "5_8", "9_16", "17plus"];

fn bucket_index(batch_len: usize) -> usize {
    match batch_len {
        0 | 1 => 0,
        2 => 1,
        3..=4 => 2,
        5..=8 => 3,
        9..=16 => 4,
        _ => 5,
    }
}

/// Flush accounting, readable while the batcher runs.
#[derive(Default)]
pub struct BatchStats {
    /// Batched forward passes flushed.
    pub batches: AtomicU64,
    /// Judge jobs across all flushed batches.
    pub jobs: AtomicU64,
    /// Flushes per batch-size bucket (see [`BATCH_BUCKET_LABELS`]).
    pub size_buckets: [AtomicU64; 6],
}

impl BatchStats {
    /// Mean jobs per flushed batch so far (0.0 before the first flush).
    pub fn mean_batch_size(&self) -> f64 {
        let batches = self.batches.load(Ordering::Relaxed);
        if batches == 0 {
            return 0.0;
        }
        self.jobs.load(Ordering::Relaxed) as f64 / batches as f64
    }

    /// The batch-size distribution as `(bucket label, flush count)`
    /// pairs, smallest bucket first.
    pub fn size_distribution(&self) -> Vec<(&'static str, u64)> {
        BATCH_BUCKET_LABELS
            .iter()
            .zip(&self.size_buckets)
            .map(|(&label, count)| (label, count.load(Ordering::Relaxed)))
            .collect()
    }
}

/// Why a queued job was answered without a probability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobError {
    /// The request deadline passed while the job was queued: the batcher
    /// shed it before the forward pass. Maps to 504.
    Expired,
    /// The judge forward pass panicked. Maps to 500.
    Panicked,
}

impl JobError {
    /// Human-readable detail for the error response body.
    pub fn message(self) -> &'static str {
        match self {
            JobError::Expired => "deadline expired while queued",
            JobError::Panicked => "judge batch panicked",
        }
    }
}

/// One queued judgement: cached features for both profiles plus the
/// snapshot to judge them with and the channel to answer on.
pub struct JudgeJob {
    /// Model snapshot this request resolved its features against.
    pub model: Arc<LoadedModel>,
    /// `F(ri)`.
    pub fa: Arc<Vec<f32>>,
    /// `F(rj)`.
    pub fb: Arc<Vec<f32>>,
    /// Absolute point after which nobody is waiting for the answer; the
    /// batcher sheds the job instead of judging it. `None` = no deadline.
    pub deadline: Option<Instant>,
    /// Where the probability (or a typed failure) is delivered.
    pub responder: SyncSender<Result<f32, JobError>>,
}

/// Why a job could not be enqueued.
#[derive(Debug)]
pub enum SubmitError {
    /// Queue full — the client should back off and retry.
    Overloaded,
    /// The batcher has shut down.
    Closed,
}

/// State shared between the [`Batcher`] handle and its flusher threads.
/// Lives behind one `Arc` so a superseded flusher can keep observing it
/// after a restart replaced it.
struct Core {
    queue: Channel<JudgeJob>,
    stats: BatchStats,
    batch_size: usize,
    flush_deadline: Duration,
    /// Bumped by the live flusher every loop iteration; the watchdog's
    /// liveness signal.
    heartbeat: AtomicU64,
    /// Flusher generation: a restart bumps it and the superseded thread
    /// exits at its next check. Starts at 0, so the count of restarts.
    generation: AtomicU64,
    /// Set by shutdown so even a fault-stalled flusher wakes and drains.
    stopping: AtomicBool,
    /// Drain-rate sink for the adaptive `Retry-After` estimate.
    admission: Option<Arc<AdmissionGate>>,
}

/// The micro-batcher: a bounded queue plus one (restartable) flusher
/// thread.
pub struct Batcher {
    core: Arc<Core>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl Batcher {
    /// Spawns the flusher. `batch_size` is the flush-on-size threshold,
    /// `deadline` the flush-on-time threshold measured from the first job
    /// of a batch, `queue_depth` the backpressure bound. Flush sizes are
    /// reported to `admission` (when given) for drain-rate tracking.
    pub fn new(
        batch_size: usize,
        deadline: Duration,
        queue_depth: usize,
        admission: Option<Arc<AdmissionGate>>,
    ) -> Self {
        let core = Arc::new(Core {
            queue: Channel::bounded(queue_depth.max(1)),
            stats: BatchStats::default(),
            batch_size: batch_size.max(1),
            flush_deadline: deadline,
            heartbeat: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            stopping: AtomicBool::new(false),
            admission,
        });
        let thread = spawn_flusher(Arc::clone(&core), 0);
        Self {
            core,
            thread: Mutex::new(Some(thread)),
        }
    }

    /// Flush accounting so far.
    pub fn stats(&self) -> &BatchStats {
        &self.core.stats
    }

    /// Jobs currently queued.
    pub fn queue_len(&self) -> usize {
        self.core.queue.len()
    }

    /// The flusher's liveness counter (bumped every loop iteration).
    pub fn heartbeat(&self) -> u64 {
        self.core.heartbeat.load(Ordering::Relaxed)
    }

    /// How many times the flusher has been restarted in place.
    pub fn restarts(&self) -> u64 {
        self.core.generation.load(Ordering::Relaxed)
    }

    /// Enqueues a job without blocking.
    pub fn submit(&self, job: JudgeJob) -> Result<(), SubmitError> {
        match self.core.queue.try_send(job) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => {
                obs::incr("serve/backpressure_503");
                Err(SubmitError::Overloaded)
            }
            Err(TrySendError::Closed(_)) => Err(SubmitError::Closed),
        }
    }

    /// Replaces the flusher thread in place: bumps the generation (the
    /// superseded thread exits at its next check without holding any
    /// job) and spawns a fresh flusher on the same queue. Queued jobs
    /// survive; nothing is dropped. Returns the new generation.
    ///
    /// The watchdog calls this when the heartbeat stalls; it is safe to
    /// call even if the old thread is alive (it simply yields).
    pub fn restart(&self) -> u64 {
        let next = self.core.generation.fetch_add(1, Ordering::SeqCst) + 1;
        let handle = spawn_flusher(Arc::clone(&self.core), next);
        let old = {
            let mut slot = self.thread.lock().expect("batcher thread slot poisoned");
            slot.replace(handle)
        };
        // The superseded thread exits on its own; detach rather than
        // join — it may be mid-sleep and restart must not block on it.
        drop(old);
        next
    }

    /// Closes the queue and joins the current flusher (drains queued
    /// jobs first — expired ones get their typed `Expired` answer).
    pub fn shutdown(&self) {
        self.core.stopping.store(true, Ordering::SeqCst);
        self.core.queue.close();
        let handle = self
            .thread
            .lock()
            .expect("batcher thread slot poisoned")
            .take();
        if let Some(t) = handle {
            let _ = t.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn spawn_flusher(core: Arc<Core>, generation: u64) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("hisrect-batcher-{generation}"))
        .spawn(move || run(&core, generation))
        .expect("spawn batcher thread")
}

fn run(core: &Core, my_generation: u64) {
    let superseded = || core.generation.load(Ordering::SeqCst) != my_generation;
    loop {
        if superseded() {
            return;
        }
        // Injected stall (`stall` fault): stop pulling work while holding
        // no job, so the watchdog sees a growing queue and a frozen
        // heartbeat. A restart (generation bump) or shutdown releases us.
        if faultsim::fires(faultsim::FaultKind::BatcherStall) {
            obs::incr("serve/batcher_stall_injected");
            while !superseded() && !core.stopping.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(5));
            }
            if superseded() {
                return;
            }
            // Stopping: fall through and drain the queue normally.
        }
        core.heartbeat.fetch_add(1, Ordering::Relaxed);
        // Block for the batch's first job.
        let Some(first) = core.queue.recv() else {
            return; // closed and drained
        };
        let flush_at = Instant::now() + core.flush_deadline;
        let mut batch = vec![first];
        let mut closed = false;
        while batch.len() < core.batch_size {
            let left = flush_at.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            match core.queue.recv_timeout(left) {
                RecvTimeout::Item(job) => batch.push(job),
                RecvTimeout::TimedOut => break,
                RecvTimeout::Closed => {
                    closed = true;
                    break;
                }
            }
        }
        flush(batch, core);
        core.heartbeat.fetch_add(1, Ordering::Relaxed);
        if closed {
            return;
        }
    }
}

/// Judges one collected batch. Expired jobs are shed first (no forward
/// pass for them); the rest are grouped by model generation so a
/// hot-reload mid-batch never mixes snapshots in one forward pass.
fn flush(batch: Vec<JudgeJob>, core: &Core) {
    let now = Instant::now();
    let (expired, live): (Vec<JudgeJob>, Vec<JudgeJob>) = batch
        .into_iter()
        .partition(|job| job.deadline.is_some_and(|d| d <= now));
    // Shed and expired jobs drain the queue just like judged ones, so
    // both feed the drain-rate estimate behind `Retry-After`.
    if let Some(gate) = &core.admission {
        gate.record_drain(expired.len() + live.len());
    }
    for job in &expired {
        obs::incr("serve/shed_deadline");
        let _ = job.responder.send(Err(JobError::Expired));
    }
    if live.is_empty() {
        return;
    }

    let stats = &core.stats;
    stats.batches.fetch_add(1, Ordering::Relaxed);
    stats.jobs.fetch_add(live.len() as u64, Ordering::Relaxed);
    let bucket = bucket_index(live.len());
    stats.size_buckets[bucket].fetch_add(1, Ordering::Relaxed);
    obs::incr("serve/batches");
    obs::add("serve/batched_requests", live.len() as u64);
    obs::observe("serve/batch_size", live.len() as f64);
    // obs counters want 'static names; one per bucket, aligned with
    // BATCH_BUCKET_LABELS.
    const BUCKET_COUNTERS: [&str; 6] = [
        "serve/batch_bucket_1",
        "serve/batch_bucket_2",
        "serve/batch_bucket_3_4",
        "serve/batch_bucket_5_8",
        "serve/batch_bucket_9_16",
        "serve/batch_bucket_17plus",
    ];
    obs::incr(BUCKET_COUNTERS[bucket]);

    // Injected latency (`slow-judge` fault): the whole flush crawls, so
    // in-budget requests blow their latency budget and trip the breaker.
    if faultsim::fires(faultsim::FaultKind::SlowJudge) {
        obs::incr("serve/slow_judge_injected");
        std::thread::sleep(slow_judge_delay());
    }

    let mut groups: Vec<(u64, Vec<JudgeJob>)> = Vec::new();
    for job in live {
        let generation = job.model.generation;
        match groups.iter_mut().find(|(g, _)| *g == generation) {
            Some((_, jobs)) => jobs.push(job),
            None => groups.push((generation, vec![job])),
        }
    }

    for (_, jobs) in groups {
        let service = &jobs[0].model.service;
        let pairs: Vec<(&[f32], &[f32])> = jobs
            .iter()
            .map(|j| (j.fa.as_slice(), j.fb.as_slice()))
            .collect();
        let result = catch_unwind(AssertUnwindSafe(|| service.judge_features_batch(&pairs)));
        match result {
            Ok(probs) => {
                for (job, p) in jobs.iter().zip(probs) {
                    let _ = job.responder.send(Ok(p));
                }
            }
            Err(_) => {
                obs::incr("serve/batch_panic");
                for job in &jobs {
                    let _ = job.responder.send(Err(JobError::Panicked));
                }
            }
        }
    }
}

/// How long an injected `slow-judge` fault sleeps. Overridable for tests
/// and the brownout harness via `HISRECT_SLOW_JUDGE_MS`.
fn slow_judge_delay() -> Duration {
    let ms = std::env::var("HISRECT_SLOW_JUDGE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(100);
    Duration::from_millis(ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Batcher plumbing with a real model is exercised via the server
    // integration tests; here we check the contracts that need no model.
    #[test]
    fn full_queue_reports_overloaded() {
        // A batcher whose flusher is effectively stalled: batch_size 1
        // with a huge queue keeps draining, so instead test the raw
        // channel bound the submit path relies on.
        let q: Channel<u32> = Channel::bounded(2);
        q.try_send(1).unwrap();
        q.try_send(2).unwrap();
        assert!(matches!(q.try_send(3), Err(TrySendError::Full(3))));
    }

    #[test]
    fn heartbeat_advances_and_restart_bumps_generation() {
        let b = Batcher::new(4, Duration::from_millis(1), 8, None);
        assert_eq!(b.restarts(), 0);
        let g1 = b.restart();
        assert_eq!(g1, 1);
        let g2 = b.restart();
        assert_eq!(g2, 2);
        assert_eq!(b.restarts(), 2);
        // The live flusher (generation 2) is blocked in recv with an
        // empty queue; shutdown must still join it cleanly.
        b.shutdown();
    }

    #[test]
    fn job_error_messages_are_stable() {
        assert_eq!(JobError::Expired.message(), "deadline expired while queued");
        assert_eq!(JobError::Panicked.message(), "judge batch panicked");
    }
}
