//! Hand-rolled HTTP/1.1 framing: just enough of RFC 9112 for the judge
//! endpoints — request line, headers, `Content-Length` bodies, keep-alive.
//!
//! Every malformed input maps to a *typed* outcome ([`ParseError`]) so the
//! server can answer with the right status code instead of panicking or
//! silently dropping the connection.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Caps on inbound requests. Head and body limits are enforced while
/// reading, so a hostile client cannot make a worker buffer unbounded
/// memory.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes of request line + headers.
    pub max_head_bytes: usize,
    /// Maximum declared/read body size.
    pub max_body_bytes: usize,
    /// Socket read timeout covering each blocking read.
    pub read_timeout: Duration,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            max_head_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
            read_timeout: Duration::from_secs(5),
        }
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Request method, upper-case as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Request target (path only; query strings are kept verbatim).
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
    /// Per-request deadline from `X-Deadline-Ms`: how long the client is
    /// willing to wait for the answer. `None` when the header was absent
    /// (the server substitutes its default).
    pub deadline_ms: Option<u64>,
}

/// Why a request could not be read. Each variant maps to one response
/// path in the server.
#[derive(Debug)]
pub enum ParseError {
    /// Syntactically invalid request ⇒ 400.
    BadRequest(String),
    /// The client stalled past the read timeout ⇒ 408 (or silent close
    /// when it stalled before sending anything, i.e. an idle keep-alive).
    Timeout {
        /// True when at least one byte of this request had arrived.
        started: bool,
    },
    /// Declared or actual body beyond [`Limits::max_body_bytes`] ⇒ 413.
    TooLarge,
    /// Clean EOF before any byte of a request ⇒ close silently.
    Closed,
    /// The connection died mid-request ⇒ close silently.
    Io(std::io::Error),
}

/// Outcome of one incremental parse attempt over a receive buffer.
///
/// The parser never consumes input itself: on [`ParseStatus::Complete`]
/// the caller advances its buffer by the reported byte count. This is
/// what lets the blocking [`Conn`] and the epoll event loop share one
/// parser — both just accumulate bytes and re-offer the buffer.
#[derive(Debug)]
pub enum ParseStatus {
    /// Not enough bytes buffered yet; read more and try again.
    Incomplete,
    /// A full request was framed: the request plus the bytes it consumed.
    Complete(Request, usize),
}

/// Attempts to frame one HTTP/1.1 request from `buf`.
///
/// Pure and restartable: callers may re-invoke with a longer buffer after
/// every read. Errors are terminal for the connection ([`ParseError::
/// BadRequest`] ⇒ 400, [`ParseError::TooLarge`] ⇒ 413); transport-level
/// outcomes (timeout, EOF) stay with the caller, which owns the socket.
pub fn try_parse_request(buf: &[u8], limits: &Limits) -> Result<ParseStatus, ParseError> {
    let Some(head_end) = find_double_crlf(buf) else {
        if buf.len() > limits.max_head_bytes {
            return Err(ParseError::BadRequest(format!(
                "request head exceeds {} bytes",
                limits.max_head_bytes
            )));
        }
        return Ok(ParseStatus::Incomplete);
    };
    if head_end > limits.max_head_bytes {
        return Err(ParseError::BadRequest(format!(
            "request head exceeds {} bytes",
            limits.max_head_bytes
        )));
    }
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();

    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => {
            return Err(ParseError::BadRequest(format!(
                "malformed request line `{request_line}`"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::BadRequest(format!(
            "unsupported protocol `{version}`"
        )));
    }

    let mut content_length = 0usize;
    let mut keep_alive = true; // HTTP/1.1 default
    let mut deadline_ms = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::BadRequest(format!("malformed header `{line}`")));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| ParseError::BadRequest(format!("bad content-length `{value}`")))?;
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(ParseError::BadRequest(
                "transfer-encoding is not supported; send content-length".into(),
            ));
        } else if name.eq_ignore_ascii_case("x-deadline-ms") {
            let ms: u64 = value
                .parse()
                .map_err(|_| ParseError::BadRequest(format!("bad x-deadline-ms `{value}`")))?;
            if ms == 0 {
                return Err(ParseError::BadRequest(
                    "x-deadline-ms must be positive".into(),
                ));
            }
            deadline_ms = Some(ms);
        }
    }
    if content_length > limits.max_body_bytes {
        return Err(ParseError::TooLarge);
    }

    let body_start = head_end + 4; // past "\r\n\r\n"
    if buf.len() < body_start + content_length {
        return Ok(ParseStatus::Incomplete);
    }
    let body = buf[body_start..body_start + content_length].to_vec();
    Ok(ParseStatus::Complete(
        Request {
            method: method.to_string(),
            path: path.to_string(),
            body,
            keep_alive,
            deadline_ms,
        },
        body_start + content_length,
    ))
}

/// A buffered connection: bytes read past the current request head are
/// kept for the body / the next pipelined request.
pub struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
    /// Consumed prefix of `buf`.
    pos: usize,
}

impl Conn {
    /// Wraps an accepted stream and applies the read timeout.
    pub fn new(stream: TcpStream, limits: &Limits) -> std::io::Result<Self> {
        stream.set_read_timeout(Some(limits.read_timeout))?;
        Ok(Self {
            stream,
            buf: Vec::new(),
            pos: 0,
        })
    }

    /// The underlying stream (for writing responses).
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    fn buffered(&self) -> &[u8] {
        &self.buf[self.pos..]
    }

    fn fill(&mut self) -> Result<usize, ParseError> {
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(0) => Ok(0),
            Ok(n) => {
                if self.pos > 0 {
                    self.buf.drain(..self.pos);
                    self.pos = 0;
                }
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(n)
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Err(ParseError::Timeout {
                    started: !self.buffered().is_empty(),
                })
            }
            Err(e) => Err(ParseError::Io(e)),
        }
    }

    /// Reads and parses the next request off the connection.
    pub fn read_request(&mut self, limits: &Limits) -> Result<Request, ParseError> {
        loop {
            match try_parse_request(self.buffered(), limits)? {
                ParseStatus::Complete(request, consumed) => {
                    self.pos += consumed;
                    return Ok(request);
                }
                ParseStatus::Incomplete => {
                    if self.fill()? == 0 {
                        return if self.buffered().is_empty() {
                            Err(ParseError::Closed)
                        } else {
                            Err(ParseError::Io(std::io::Error::new(
                                std::io::ErrorKind::UnexpectedEof,
                                "connection closed mid-request",
                            )))
                        };
                    }
                }
            }
        }
    }
}

fn find_double_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// An outbound response. Bodies are JSON throughout the server, so the
/// content type is fixed.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body (JSON text; may be empty).
    pub body: String,
    /// Extra headers (e.g. `Retry-After`).
    pub extra_headers: Vec<(String, String)>,
}

impl Response {
    /// A response with a JSON body.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            body: body.into(),
            extra_headers: Vec::new(),
        }
    }

    /// An error response whose body is `{"error": msg}`.
    pub fn error(status: u16, msg: &str) -> Self {
        let quoted = serde_json::to_string(msg).expect("strings are serializable");
        Self::json(status, format!("{{\"error\":{quoted}}}"))
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.extra_headers.push((name.into(), value.into()));
        self
    }

    /// Serializes the full wire form (status line, headers, body) into a
    /// byte buffer, for callers that flush incrementally (the event loop
    /// resumes partial writes from such a buffer).
    pub fn to_bytes(&self, keep_alive: bool) -> Vec<u8> {
        let mut out = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            reason(self.status),
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.extra_headers {
            out.push_str(name);
            out.push_str(": ");
            out.push_str(value);
            out.push_str("\r\n");
        }
        out.push_str("\r\n");
        out.push_str(&self.body);
        out.into_bytes()
    }

    /// Serializes the response onto `w`. `keep_alive` picks the
    /// `Connection` header; the caller closes the socket when false.
    pub fn write_to(&self, w: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        w.write_all(&self.to_bytes(keep_alive))?;
        w.flush()
    }
}

/// Reason phrase for the status codes the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Content Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    fn round_trip(raw: &[u8]) -> Result<Request, ParseError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let client = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        let limits = Limits {
            read_timeout: Duration::from_millis(500),
            ..Limits::default()
        };
        let mut conn = Conn::new(stream, &limits).unwrap();
        let req = conn.read_request(&limits);
        client.join().unwrap();
        req
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            round_trip(b"POST /judge HTTP/1.1\r\ncontent-length: 13\r\n\r\n{\"i\":1,\"j\":2}")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/judge");
        assert_eq!(req.body, b"{\"i\":1,\"j\":2}");
        assert!(req.keep_alive);
    }

    #[test]
    fn connection_close_is_honored() {
        let req = round_trip(b"GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
        assert!(req.body.is_empty());
    }

    #[test]
    fn deadline_header_is_parsed() {
        let req = round_trip(
            b"POST /judge HTTP/1.1\r\nX-Deadline-Ms: 250\r\ncontent-length: 2\r\n\r\n{}",
        )
        .unwrap();
        assert_eq!(req.deadline_ms, Some(250));
        let none = round_trip(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(none.deadline_ms, None);
    }

    #[test]
    fn bad_deadline_header_is_rejected() {
        assert!(matches!(
            round_trip(b"GET / HTTP/1.1\r\nx-deadline-ms: soon\r\n\r\n"),
            Err(ParseError::BadRequest(_))
        ));
        assert!(matches!(
            round_trip(b"GET / HTTP/1.1\r\nx-deadline-ms: 0\r\n\r\n"),
            Err(ParseError::BadRequest(_))
        ));
    }

    #[test]
    fn garbage_is_a_bad_request() {
        assert!(matches!(
            round_trip(b"NOT A REQUEST\r\n\r\n"),
            Err(ParseError::BadRequest(_))
        ));
    }

    #[test]
    fn oversized_declared_body_is_too_large() {
        let raw = b"POST /judge HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n";
        assert!(matches!(round_trip(raw), Err(ParseError::TooLarge)));
    }

    #[test]
    fn mid_body_disconnect_is_io_error() {
        let raw = b"POST /judge HTTP/1.1\r\ncontent-length: 50\r\n\r\n{\"partial\":";
        assert!(matches!(round_trip(raw), Err(ParseError::Io(_))));
    }

    #[test]
    fn response_serializes_with_headers() {
        let mut out = Vec::new();
        Response::json(503, "{}")
            .with_header("retry-after", "1")
            .write_to(&mut out, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
