//! Minimal blocking HTTP/1.1 client with keep-alive — just enough to
//! drive the server from the load generator and the integration tests
//! without pulling in an HTTP dependency.
//!
//! With a [`RetryPolicy`] attached the client also retries transport
//! errors and `503` rejections with **deterministic** seeded jittered
//! exponential backoff, honoring the server's `Retry-After` hint when
//! one is present (capped by the policy). Determinism matters: the load
//! generator and the CI gates replay identical schedules run to run.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body as text.
    pub body: String,
    /// Whether the server will keep the connection open.
    pub keep_alive: bool,
    /// All response headers, lower-cased names, in wire order.
    pub headers: Vec<(String, String)>,
}

impl ClientResponse {
    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Retry behavior for transport errors and `503` rejections.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries allowed after the first attempt (the retry budget).
    pub budget: u32,
    /// Backoff base: attempt `n` waits about `base · 2ⁿ`, jittered.
    pub base: Duration,
    /// Cap on any single wait, including `Retry-After` hints.
    pub cap: Duration,
    /// Seed of the jitter PRNG — same seed, same waits, every run.
    pub seed: u64,
}

impl RetryPolicy {
    /// A policy with `budget` retries and deterministic jitter from
    /// `seed` (50 ms base, 2 s cap).
    pub fn new(budget: u32, seed: u64) -> Self {
        Self {
            budget,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            seed,
        }
    }
}

/// A persistent connection to the server.
pub struct HttpClient {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    timeout: Duration,
    retry: Option<RetryPolicy>,
    /// Jitter PRNG state (xorshift64*), seeded from the policy.
    rng: u64,
}

impl HttpClient {
    /// Connects lazily on first request. No retry policy: errors and
    /// 503s surface to the caller immediately (the old behavior).
    pub fn new(addr: SocketAddr) -> Self {
        Self {
            addr,
            stream: None,
            timeout: Duration::from_secs(10),
            retry: None,
            rng: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Overrides the connect/read timeout (default 10 s). Applies to
    /// connections opened after the call.
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// [`HttpClient::new`] with a retry policy attached.
    pub fn with_retry(addr: SocketAddr, policy: RetryPolicy) -> Self {
        let mut client = Self::new(addr);
        client.rng = policy.seed | 1; // xorshift state must be non-zero
        client.retry = Some(policy);
        client
    }

    /// `GET path`.
    pub fn get(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<ClientResponse> {
        self.request("POST", path, Some(body))
    }

    /// `POST path` with a JSON body and extra request headers (e.g.
    /// `("x-deadline-ms", "250")`).
    pub fn post_with_headers(
        &mut self,
        path: &str,
        body: &str,
        headers: &[(&str, &str)],
    ) -> std::io::Result<ClientResponse> {
        self.request_with_headers("POST", path, Some(body), headers)
    }

    /// Sends one request (retrying per the policy, if any).
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<ClientResponse> {
        self.request_with_headers(method, path, body, &[])
    }

    /// [`HttpClient::request`] with extra request headers.
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        headers: &[(&str, &str)],
    ) -> std::io::Result<ClientResponse> {
        let Some(policy) = self.retry else {
            return self.request_pooled(method, path, body, headers);
        };
        let mut attempt = 0u32;
        loop {
            match self.request_pooled(method, path, body, headers) {
                Ok(r) if r.status == 503 && attempt < policy.budget => {
                    // Honor the server's own hint when present; fall back
                    // to jittered exponential backoff, both capped.
                    let wait = r
                        .header("retry-after")
                        .and_then(|v| v.parse::<u64>().ok())
                        .map(Duration::from_secs)
                        .unwrap_or_else(|| self.backoff(policy, attempt))
                        .min(policy.cap);
                    std::thread::sleep(wait);
                    attempt += 1;
                }
                Ok(r) => return Ok(r),
                Err(_) if attempt < policy.budget => {
                    self.stream = None;
                    let wait = self.backoff(policy, attempt);
                    std::thread::sleep(wait);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// `base · 2ⁿ` scaled by a deterministic jitter in `[0.5, 1.0)`,
    /// capped by the policy.
    fn backoff(&mut self, policy: RetryPolicy, attempt: u32) -> Duration {
        // xorshift64*: fast, deterministic, plenty for jitter.
        self.rng ^= self.rng >> 12;
        self.rng ^= self.rng << 25;
        self.rng ^= self.rng >> 27;
        let r = self.rng.wrapping_mul(0x2545_F491_4F6C_DD1D);
        let jitter = 0.5 + 0.5 * ((r >> 11) as f64 / (1u64 << 53) as f64);
        let exp = policy
            .base
            .saturating_mul(1u32.checked_shl(attempt.min(16)).unwrap_or(u32::MAX));
        exp.mul_f64(jitter).min(policy.cap)
    }

    fn stream(&mut self) -> std::io::Result<&mut TcpStream> {
        if self.stream.is_none() {
            let s = TcpStream::connect_timeout(&self.addr, self.timeout)?;
            s.set_read_timeout(Some(self.timeout))?;
            self.stream = Some(s);
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    /// One attempt on the persistent connection; reconnects once if the
    /// pooled connection went stale.
    fn request_pooled(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        headers: &[(&str, &str)],
    ) -> std::io::Result<ClientResponse> {
        let had_pooled = self.stream.is_some();
        match self.request_once(method, path, body, headers) {
            Ok(r) => Ok(r),
            Err(e) if had_pooled => {
                // Stale keep-alive connection (server restarted or closed
                // it): retry once on a fresh socket.
                let _ = e;
                self.stream = None;
                self.request_once(method, path, body, headers)
            }
            Err(e) => Err(e),
        }
    }

    fn request_once(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        headers: &[(&str, &str)],
    ) -> std::io::Result<ClientResponse> {
        let body = body.unwrap_or("");
        let mut raw = format!(
            "{method} {path} HTTP/1.1\r\nhost: hisrect\r\ncontent-length: {}\r\n",
            body.len()
        );
        for (name, value) in headers {
            raw.push_str(name);
            raw.push_str(": ");
            raw.push_str(value);
            raw.push_str("\r\n");
        }
        raw.push_str("\r\n");
        raw.push_str(body);
        let stream = self.stream()?;
        stream.write_all(raw.as_bytes())?;
        stream.flush()?;
        let response = read_response(stream)?;
        if !response.keep_alive {
            self.stream = None;
        }
        Ok(response)
    }
}

/// Reads one response off `stream` (status line, headers,
/// `Content-Length` body).
pub fn read_response(stream: &mut TcpStream) -> std::io::Result<ClientResponse> {
    let mut buf = Vec::new();
    let head_end = loop {
        if let Some(i) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break i;
        }
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before response head",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad status line `{status_line}`"),
            )
        })?;
    let mut content_length = 0usize;
    let mut keep_alive = true;
    let mut headers = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.parse().unwrap_or(0);
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        }
        headers.push((name.to_ascii_lowercase(), value.to_string()));
    }
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(ClientResponse {
        status,
        body: String::from_utf8_lossy(&body).into_owned(),
        keep_alive,
        headers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_per_seed_and_bounded() {
        let policy = RetryPolicy::new(5, 42);
        let addr: SocketAddr = "127.0.0.1:9".parse().unwrap();
        let mut a = HttpClient::with_retry(addr, policy);
        let mut b = HttpClient::with_retry(addr, policy);
        for attempt in 0..6 {
            let wa = a.backoff(policy, attempt);
            let wb = b.backoff(policy, attempt);
            assert_eq!(wa, wb, "same seed, same schedule");
            assert!(wa <= policy.cap);
            assert!(wa >= policy.base / 2, "jitter floor is half the base");
        }
        let mut c = HttpClient::with_retry(addr, RetryPolicy::new(5, 43));
        let w42: Vec<_> = (0..4).map(|n| a.backoff(policy, n)).collect();
        let w43: Vec<_> = (0..4).map(|n| c.backoff(policy, n)).collect();
        assert_ne!(w42, w43, "different seeds diverge");
    }

    #[test]
    fn response_header_lookup_is_case_insensitive() {
        let r = ClientResponse {
            status: 503,
            body: String::new(),
            keep_alive: true,
            headers: vec![("retry-after".into(), "7".into())],
        };
        assert_eq!(r.header("Retry-After"), Some("7"));
        assert_eq!(r.header("x-missing"), None);
    }
}
