//! Minimal blocking HTTP/1.1 client with keep-alive — just enough to
//! drive the server from the load generator and the integration tests
//! without pulling in an HTTP dependency.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body as text.
    pub body: String,
    /// Whether the server will keep the connection open.
    pub keep_alive: bool,
}

/// A persistent connection to the server.
pub struct HttpClient {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    timeout: Duration,
}

impl HttpClient {
    /// Connects lazily on first request.
    pub fn new(addr: SocketAddr) -> Self {
        Self {
            addr,
            stream: None,
            timeout: Duration::from_secs(10),
        }
    }

    fn stream(&mut self) -> std::io::Result<&mut TcpStream> {
        if self.stream.is_none() {
            let s = TcpStream::connect_timeout(&self.addr, self.timeout)?;
            s.set_read_timeout(Some(self.timeout))?;
            self.stream = Some(s);
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    /// `GET path`.
    pub fn get(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<ClientResponse> {
        self.request("POST", path, Some(body))
    }

    /// Sends one request on the persistent connection; reconnects once if
    /// the pooled connection went stale.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<ClientResponse> {
        let had_pooled = self.stream.is_some();
        match self.request_once(method, path, body) {
            Ok(r) => Ok(r),
            Err(e) if had_pooled => {
                // Stale keep-alive connection (server restarted or closed
                // it): retry once on a fresh socket.
                let _ = e;
                self.stream = None;
                self.request_once(method, path, body)
            }
            Err(e) => Err(e),
        }
    }

    fn request_once(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<ClientResponse> {
        let body = body.unwrap_or("");
        let raw = format!(
            "{method} {path} HTTP/1.1\r\nhost: hisrect\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        let stream = self.stream()?;
        stream.write_all(raw.as_bytes())?;
        stream.flush()?;
        let response = read_response(stream)?;
        if !response.keep_alive {
            self.stream = None;
        }
        Ok(response)
    }
}

/// Reads one response off `stream` (status line, headers,
/// `Content-Length` body).
pub fn read_response(stream: &mut TcpStream) -> std::io::Result<ClientResponse> {
    let mut buf = Vec::new();
    let head_end = loop {
        if let Some(i) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break i;
        }
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before response head",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad status line `{status_line}`"),
            )
        })?;
    let mut content_length = 0usize;
    let mut keep_alive = true;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.parse().unwrap_or(0);
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        }
    }
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(ClientResponse {
        status,
        body: String::from_utf8_lossy(&body).into_owned(),
        keep_alive,
    })
}
