//! Admission control ahead of the micro-batcher.
//!
//! Two independent gates decide whether a judge request may enter the
//! queue at all:
//!
//! 1. a **token bucket** (`rate` tokens/s, `burst` capacity) bounding the
//!    sustained request rate, and
//! 2. a **queue-occupancy watermark**: once the batcher's queue is at or
//!    beyond `queue_high_watermark × queue_depth`, new work is refused
//!    before it can pile latency onto everything already queued.
//!
//! A refused request is answered `503` with an **adaptive** `Retry-After`
//! derived from the observed drain rate: the batcher reports every flush
//! through [`AdmissionGate::record_drain`], an EWMA of jobs/s is kept, and
//! the hint is "how long until the current backlog clears at that pace",
//! clamped to `[1, 30]` seconds. Under a short spike clients come back
//! almost immediately; under a sustained stall they back off hard.
//!
//! Disabled by default (`rate = 0`, watermark = 1.0): an uncontended
//! server never consults the bucket and behaves exactly as before.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Tunables of the admission gate.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Sustained admitted requests per second. `0.0` disables the token
    /// bucket entirely (the default).
    pub rate: f64,
    /// Bucket capacity: how many requests may arrive back-to-back before
    /// the sustained rate applies. Ignored when `rate` is `0.0`.
    pub burst: f64,
    /// Fraction of the batcher queue depth at which new work is refused;
    /// `1.0` (the default) only refuses when the queue is already full,
    /// i.e. never fires before the queue itself would.
    pub queue_high_watermark: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            rate: 0.0,
            burst: 0.0,
            queue_high_watermark: 1.0,
        }
    }
}

/// Floor of the adaptive `Retry-After` hint, in seconds. Kept at the old
/// hard-coded value so the hint can only get *more* patient, never less.
pub const RETRY_AFTER_FLOOR_SECS: u64 = 1;
/// Ceiling of the adaptive `Retry-After` hint, in seconds.
pub const RETRY_AFTER_CAP_SECS: u64 = 30;

/// EWMA smoothing factor for the drain rate (per flush observation).
const DRAIN_ALPHA: f64 = 0.2;
/// How recently a rejection must have happened for the gate to report
/// itself as shedding, in milliseconds.
const SHED_WINDOW_MS: u64 = 1000;

struct Bucket {
    tokens: f64,
    last_refill: Instant,
}

struct DrainEwma {
    /// Smoothed drain rate in jobs per second; 0 until first observation.
    rate: f64,
    last_flush: Instant,
}

/// The gate itself. One per server; shared by every worker thread.
pub struct AdmissionGate {
    cfg: AdmissionConfig,
    /// Batcher queue capacity, fixed at construction.
    queue_depth: usize,
    bucket: Mutex<Bucket>,
    drain: Mutex<DrainEwma>,
    /// Epoch-less clock base for the shed window.
    started: Instant,
    /// Milliseconds since `started` of the most recent rejection.
    last_shed_ms: AtomicU64,
    admitted: AtomicU64,
    rejected: AtomicU64,
}

impl AdmissionGate {
    /// Builds the gate for a batcher queue of `queue_depth` slots.
    pub fn new(cfg: AdmissionConfig, queue_depth: usize) -> Self {
        let now = Instant::now();
        Self {
            cfg,
            queue_depth: queue_depth.max(1),
            bucket: Mutex::new(Bucket {
                tokens: cfg.burst.max(1.0),
                last_refill: now,
            }),
            drain: Mutex::new(DrainEwma {
                rate: 0.0,
                last_flush: now,
            }),
            started: now,
            last_shed_ms: AtomicU64::new(u64::MAX),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// The configuration the gate runs under.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Decides whether a request holding `queue_len` jobs already queued
    /// may proceed. `Err(secs)` carries the adaptive `Retry-After` hint.
    pub fn admit(&self, queue_len: usize) -> Result<(), u64> {
        if self.cfg.queue_high_watermark < 1.0 {
            let watermark = (self.cfg.queue_high_watermark * self.queue_depth as f64).ceil();
            if queue_len as f64 >= watermark {
                return Err(self.reject(queue_len));
            }
        }
        if self.cfg.rate > 0.0 {
            let mut bucket = self.bucket.lock().expect("admission bucket poisoned");
            let now = Instant::now();
            let elapsed = now.duration_since(bucket.last_refill).as_secs_f64();
            bucket.last_refill = now;
            bucket.tokens = (bucket.tokens + elapsed * self.cfg.rate).min(self.cfg.burst.max(1.0));
            if bucket.tokens < 1.0 {
                drop(bucket);
                return Err(self.reject(queue_len));
            }
            bucket.tokens -= 1.0;
        }
        self.admitted.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn reject(&self, queue_len: usize) -> u64 {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        let since_start = self.started.elapsed().as_millis() as u64;
        self.last_shed_ms.store(since_start, Ordering::Relaxed);
        obs::incr("serve/shed_admission");
        self.retry_after_secs(queue_len)
    }

    /// The batcher reports each flush: `n` jobs answered. Feeds the EWMA
    /// drain-rate estimate the `Retry-After` hint is derived from.
    pub fn record_drain(&self, n: usize) {
        if n == 0 {
            return;
        }
        let mut drain = self.drain.lock().expect("admission drain poisoned");
        let now = Instant::now();
        let dt = now.duration_since(drain.last_flush).as_secs_f64().max(1e-6);
        drain.last_flush = now;
        let observed = n as f64 / dt;
        drain.rate = if drain.rate == 0.0 {
            observed
        } else {
            DRAIN_ALPHA * observed + (1.0 - DRAIN_ALPHA) * drain.rate
        };
    }

    /// The smoothed drain rate in jobs/s (0 before the first flush).
    pub fn drain_rate(&self) -> f64 {
        self.drain.lock().expect("admission drain poisoned").rate
    }

    /// Adaptive `Retry-After`: the estimated seconds until `queue_len`
    /// queued jobs clear at the observed drain rate, clamped to
    /// `[`[`RETRY_AFTER_FLOOR_SECS`]`, `[`RETRY_AFTER_CAP_SECS`]`]`.
    /// Before any flush has been observed the floor is returned — the
    /// old hard-coded behavior.
    pub fn retry_after_secs(&self, queue_len: usize) -> u64 {
        let rate = self.drain_rate();
        if rate <= 0.0 || queue_len == 0 {
            return RETRY_AFTER_FLOOR_SECS;
        }
        let secs = (queue_len as f64 / rate).ceil() as u64;
        secs.clamp(RETRY_AFTER_FLOOR_SECS, RETRY_AFTER_CAP_SECS)
    }

    /// True when the gate rejected a request within the last second —
    /// the `/healthz` "shedding" signal.
    pub fn shedding(&self) -> bool {
        let last = self.last_shed_ms.load(Ordering::Relaxed);
        if last == u64::MAX {
            return false;
        }
        let now = self.started.elapsed().as_millis() as u64;
        now.saturating_sub(last) <= SHED_WINDOW_MS
    }

    /// Requests admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Requests rejected so far.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn disabled_gate_admits_everything() {
        let gate = AdmissionGate::new(AdmissionConfig::default(), 8);
        for _ in 0..10_000 {
            assert!(gate.admit(7).is_ok());
        }
        assert_eq!(gate.rejected(), 0);
        assert!(!gate.shedding());
    }

    #[test]
    fn token_bucket_limits_bursts_then_refills() {
        let gate = AdmissionGate::new(
            AdmissionConfig {
                rate: 50.0,
                burst: 3.0,
                queue_high_watermark: 1.0,
            },
            8,
        );
        let mut rejected = 0;
        for _ in 0..10 {
            if gate.admit(0).is_err() {
                rejected += 1;
            }
        }
        assert!(
            rejected >= 5,
            "burst of 3 must not admit 10, got {rejected} rejections"
        );
        assert!(gate.shedding());
        std::thread::sleep(Duration::from_millis(100));
        assert!(gate.admit(0).is_ok(), "bucket refills at 50/s");
    }

    #[test]
    fn watermark_rejects_deep_queues() {
        let gate = AdmissionGate::new(
            AdmissionConfig {
                rate: 0.0,
                burst: 0.0,
                queue_high_watermark: 0.5,
            },
            10,
        );
        assert!(gate.admit(4).is_ok());
        assert!(gate.admit(5).is_err());
        assert!(gate.admit(10).is_err());
    }

    #[test]
    fn retry_after_tracks_drain_rate() {
        let gate = AdmissionGate::new(AdmissionConfig::default(), 64);
        // No observation yet: the old hard-coded floor.
        assert_eq!(gate.retry_after_secs(64), RETRY_AFTER_FLOOR_SECS);
        // Observe a drain of ~100 jobs over ~50ms → ~2000 jobs/s EWMA seed.
        std::thread::sleep(Duration::from_millis(50));
        gate.record_drain(100);
        let rate = gate.drain_rate();
        assert!(rate > 0.0);
        // Backlog that clears in under a second still hints the floor...
        assert_eq!(gate.retry_after_secs(1), RETRY_AFTER_FLOOR_SECS);
        // ...a backlog worth many seconds hints proportionally more,
        // capped at 30.
        let deep = (rate * 10.0) as usize;
        let hint = gate.retry_after_secs(deep);
        assert!((2..=RETRY_AFTER_CAP_SECS).contains(&hint), "hint {hint}");
        assert_eq!(gate.retry_after_secs(usize::MAX / 2), RETRY_AFTER_CAP_SECS);
    }

    #[test]
    fn shedding_window_expires() {
        let gate = AdmissionGate::new(
            AdmissionConfig {
                rate: 1.0,
                burst: 1.0,
                queue_high_watermark: 1.0,
            },
            8,
        );
        assert!(gate.admit(0).is_ok());
        assert!(gate.admit(0).is_err());
        assert!(gate.shedding());
        // The window is 1s; do not wait it out in a unit test — just
        // verify the counter bookkeeping is consistent.
        assert_eq!(gate.admitted(), 1);
        assert_eq!(gate.rejected(), 1);
    }
}
