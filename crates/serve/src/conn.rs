//! Per-connection state machine for the epoll event loop.
//!
//! A connection is always in exactly one phase:
//!
//! ```text
//!          ┌──────── response flushed, keep-alive ────────┐
//!          ▼                                              │
//!   Reading ── full request parsed ──▶ Busy ── done ──▶ Writing
//!      │                                │                 │
//!      │ parse error / timeout          │ (worker pool)   │ partial write
//!      ▼                                ▼                 ▼ (EPOLLOUT)
//!   Writing(close_after) ─── flushed ──▶ Closed ◀── write error
//! ```
//!
//! - **Reading**: bytes accumulate in `read_buf`; after every read the
//!   shared incremental parser ([`crate::http::try_parse_request`]) is
//!   re-offered the buffer. Framing errors turn into a typed 400/413/408
//!   response with `close_after_write` set.
//! - **Busy**: a fully framed request has been dispatched to the compute
//!   pool; the loop stops reading this socket (no pipelining past an
//!   in-flight request) until the response comes back.
//! - **Writing**: the serialized response drains from `write_buf`;
//!   `EPOLLOUT` interest is registered only while bytes remain, so an
//!   idle keep-alive connection costs one `EPOLLIN` registration and
//!   nothing else.
//!
//! The `(token, seq)` pair guards against slot reuse: a completion from
//! a worker only lands if both match, so a response for a connection
//! that died mid-flight is dropped instead of corrupting the slot's new
//! occupant.

use crate::http::{try_parse_request, Limits, ParseError, ParseStatus, Request, Response};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// What the connection is waiting on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Accumulating request bytes.
    Reading,
    /// A request is with the compute pool; `seq` names it.
    Busy,
    /// Draining `write_buf`.
    Writing,
    /// Finished; the slot can be reclaimed.
    Closed,
}

/// What [`Conn::on_readable`] wants the loop to do next.
#[derive(Debug)]
pub enum ReadOutcome {
    /// Nothing actionable (need more bytes, or mid-write).
    Continue,
    /// A full request is framed and ready for dispatch.
    Dispatch(Request),
    /// The peer went away (EOF / reset) with nothing owed.
    Close,
}

/// One tracked connection.
pub struct Conn {
    /// The non-blocking socket.
    pub stream: TcpStream,
    /// Monotonic per-slot sequence; bumped on every dispatched request.
    pub seq: u32,
    /// Current lifecycle phase.
    pub phase: Phase,
    read_buf: Vec<u8>,
    /// Consumed prefix of `read_buf`.
    read_pos: usize,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Close once `write_buf` drains (error responses, `Connection:
    /// close` requests).
    pub close_after_write: bool,
    /// Last successful read or write, for the timeout scan.
    pub last_activity: Instant,
}

impl Conn {
    /// Wraps an accepted, already non-blocking stream.
    pub fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            seq: 0,
            phase: Phase::Reading,
            read_buf: Vec::new(),
            read_pos: 0,
            write_buf: Vec::new(),
            write_pos: 0,
            close_after_write: false,
            last_activity: Instant::now(),
        }
    }

    fn buffered(&self) -> &[u8] {
        &self.read_buf[self.read_pos..]
    }

    /// True when at least one byte of the *current* request has arrived
    /// (decides 408 vs silent close on timeout).
    pub fn request_started(&self) -> bool {
        !self.buffered().is_empty()
    }

    /// Bytes still owed to the peer.
    pub fn write_pending(&self) -> bool {
        self.write_pos < self.write_buf.len()
    }

    /// Drains the socket into `read_buf` until `WouldBlock`, then tries
    /// to frame a request. Only meaningful in [`Phase::Reading`].
    pub fn on_readable(&mut self, limits: &Limits) -> ReadOutcome {
        debug_assert_eq!(self.phase, Phase::Reading);
        let mut saw_eof = false;
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    saw_eof = true;
                    break;
                }
                Ok(n) => {
                    self.last_activity = Instant::now();
                    if self.read_pos > 0 {
                        self.read_buf.drain(..self.read_pos);
                        self.read_pos = 0;
                    }
                    self.read_buf.extend_from_slice(&chunk[..n]);
                    // A hostile head/body grows past its limit inside the
                    // parse attempt below, never unboundedly here: the
                    // parser rejects oversized heads and declared bodies,
                    // and an undeclared flood is bounded by the parse
                    // error it triggers.
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return ReadOutcome::Close,
            }
        }
        match self.try_frame(limits) {
            Some(outcome) => outcome,
            None if saw_eof => ReadOutcome::Close,
            None => ReadOutcome::Continue,
        }
    }

    /// Attempts to frame one request from what is buffered; `None` means
    /// incomplete. Parse errors are converted to a typed response queued
    /// for write (the connection closes after it drains).
    pub fn try_frame(&mut self, limits: &Limits) -> Option<ReadOutcome> {
        match try_parse_request(self.buffered(), limits) {
            Ok(ParseStatus::Complete(request, consumed)) => {
                self.read_pos += consumed;
                self.seq = self.seq.wrapping_add(1);
                self.phase = Phase::Busy;
                Some(ReadOutcome::Dispatch(request))
            }
            Ok(ParseStatus::Incomplete) => None,
            Err(ParseError::TooLarge) => {
                obs::incr("serve/http_4xx");
                self.queue_response(&Response::error(413, "request body too large"), false);
                Some(ReadOutcome::Continue)
            }
            Err(ParseError::BadRequest(msg)) => {
                obs::incr("serve/http_4xx");
                self.queue_response(&Response::error(400, &msg), false);
                Some(ReadOutcome::Continue)
            }
            // The incremental parser never produces transport errors.
            Err(_) => Some(ReadOutcome::Close),
        }
    }

    /// Serializes `response` into the write buffer and enters
    /// [`Phase::Writing`]. With `keep_alive` false the connection closes
    /// once the bytes drain.
    pub fn queue_response(&mut self, response: &Response, keep_alive: bool) {
        self.write_buf = response.to_bytes(keep_alive);
        self.write_pos = 0;
        self.close_after_write = !keep_alive;
        self.phase = Phase::Writing;
    }

    /// Pushes buffered response bytes at the socket until `WouldBlock`
    /// or done. Returns the I/O error when the peer is gone.
    ///
    /// On a fully drained keep-alive response the connection re-enters
    /// [`Phase::Reading`]; the caller must then re-offer any buffered
    /// pipelined bytes via [`Conn::try_frame`].
    pub fn on_writable(&mut self) -> std::io::Result<()> {
        while self.write_pending() {
            match self.stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => return Err(std::io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.write_pos += n;
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.close_after_write {
            self.phase = Phase::Closed;
        } else {
            self.write_buf.clear();
            self.write_pos = 0;
            self.phase = Phase::Reading;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    #[test]
    fn frames_request_split_across_reads() {
        let (mut client, server) = pair();
        let mut conn = Conn::new(server);
        let limits = Limits::default();
        client
            .write_all(b"POST /judge HTTP/1.1\r\ncontent-le")
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(matches!(conn.on_readable(&limits), ReadOutcome::Continue));
        client.write_all(b"ngth: 2\r\n\r\n{}").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        match conn.on_readable(&limits) {
            ReadOutcome::Dispatch(req) => {
                assert_eq!(req.path, "/judge");
                assert_eq!(req.body, b"{}");
            }
            other => panic!("expected dispatch, got {other:?}"),
        }
        assert_eq!(conn.phase, Phase::Busy);
    }

    #[test]
    fn parse_error_queues_close_response() {
        let (mut client, server) = pair();
        let mut conn = Conn::new(server);
        client.write_all(b"NOT A REQUEST\r\n\r\n").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(matches!(
            conn.on_readable(&Limits::default()),
            ReadOutcome::Continue
        ));
        assert_eq!(conn.phase, Phase::Writing);
        assert!(conn.close_after_write);
        conn.on_writable().unwrap();
        assert_eq!(conn.phase, Phase::Closed);
    }

    #[test]
    fn keep_alive_response_returns_to_reading() {
        let (_client, server) = pair();
        let mut conn = Conn::new(server);
        conn.queue_response(&Response::json(200, "{}"), true);
        conn.on_writable().unwrap();
        assert_eq!(conn.phase, Phase::Reading);
        assert!(!conn.write_pending());
    }

    #[test]
    fn eof_with_no_request_closes() {
        let (client, server) = pair();
        let mut conn = Conn::new(server);
        drop(client);
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(matches!(
            conn.on_readable(&Limits::default()),
            ReadOutcome::Close
        ));
    }
}
