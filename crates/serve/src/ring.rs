//! Consistent-hash ring mapping user ids onto shard indices.
//!
//! Classic vnode construction: every shard contributes `vnodes` points
//! at `fnv1a64("shard-{s}/vnode-{v}")` on a `u64` circle; a key is owned
//! by the first point clockwise of its own hash. Because points are a
//! deterministic function of `(shard index, vnode)`, every router — and
//! every test — agrees on ownership without coordination, and adding a
//! shard moves only `~1/n` of the keyspace.
//!
//! Every shard loads the full corpus and model, so ownership is a
//! *cache-locality* assignment, not a correctness one: any shard answers
//! any key byte-identically, which is what makes ring walking on
//! ejection ([`HashRing::owner_where`]) trivially safe — failover just
//! warms a different shard's feature cache.

/// FNV-1a 64-bit over a byte string — the repo's standard cheap hash.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// splitmix64's finalizer: raw FNV over short, similar strings (vnode
/// labels, little-endian ids) leaves the high bits correlated, which
/// skews the ring badly; one avalanche pass spreads points evenly.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a user/profile id onto the ring's keyspace.
pub fn hash_key(uid: u64) -> u64 {
    mix64(fnv1a64(&uid.to_le_bytes()))
}

/// The ring: sorted vnode points, each tagged with its shard.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point hash, shard index)`, sorted by hash.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl HashRing {
    /// Default vnodes per shard: enough to keep the keyspace split
    /// within a few percent of even for small clusters.
    pub const DEFAULT_VNODES: usize = 64;

    /// Builds the ring for `shards` shards with `vnodes` points each.
    pub fn new(shards: usize, vnodes: usize) -> Self {
        let shards = shards.max(1);
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(shards * vnodes);
        for s in 0..shards {
            for v in 0..vnodes {
                points.push((mix64(fnv1a64(format!("shard-{s}/vnode-{v}").as_bytes())), s));
            }
        }
        // Ties (astronomically unlikely) resolve by shard index so the
        // ring is still a pure function of (shards, vnodes).
        points.sort_unstable();
        Self { points, shards }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `uid`.
    pub fn owner(&self, uid: u64) -> usize {
        self.owner_where(uid, |_| true)
            .expect("a predicate accepting every shard always finds one")
    }

    /// The first shard clockwise of `uid`'s point that satisfies
    /// `routable` — ring-walk failover past ejected or draining shards.
    /// `None` when no shard qualifies.
    pub fn owner_where(&self, uid: u64, routable: impl Fn(usize) -> bool) -> Option<usize> {
        let h = hash_key(uid);
        let start = self.points.partition_point(|&(p, _)| p < h);
        let n = self.points.len();
        let mut seen = 0usize;
        for k in 0..n {
            let (_, shard) = self.points[(start + k) % n];
            if routable(shard) {
                return Some(shard);
            }
            seen += 1;
            if seen >= n {
                break;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ownership_is_deterministic_and_total() {
        let a = HashRing::new(3, HashRing::DEFAULT_VNODES);
        let b = HashRing::new(3, HashRing::DEFAULT_VNODES);
        for uid in 0..1000u64 {
            let s = a.owner(uid);
            assert!(s < 3);
            assert_eq!(s, b.owner(uid), "two rings over the same config agree");
        }
    }

    #[test]
    fn keyspace_split_is_roughly_even() {
        let ring = HashRing::new(3, HashRing::DEFAULT_VNODES);
        let mut counts = [0usize; 3];
        for uid in 0..30_000u64 {
            counts[ring.owner(uid)] += 1;
        }
        for &c in &counts {
            assert!(
                (5_000..=15_000).contains(&c),
                "pathologically uneven split: {counts:?}"
            );
        }
    }

    #[test]
    fn ejection_walks_to_the_next_shard() {
        let ring = HashRing::new(3, HashRing::DEFAULT_VNODES);
        for uid in 0..200u64 {
            let owner = ring.owner(uid);
            let fallback = ring.owner_where(uid, |s| s != owner).unwrap();
            assert_ne!(fallback, owner);
            // Keys not owned by the dead shard keep their owner.
            if ring.owner(uid) != 1 {
                assert_eq!(ring.owner_where(uid, |s| s != 1), Some(ring.owner(uid)));
            }
        }
        assert_eq!(ring.owner_where(7, |_| false), None, "no routable shard");
    }

    #[test]
    fn adding_a_shard_moves_a_minority_of_keys() {
        let three = HashRing::new(3, HashRing::DEFAULT_VNODES);
        let four = HashRing::new(4, HashRing::DEFAULT_VNODES);
        let moved = (0..10_000u64)
            .filter(|&uid| {
                let o3 = three.owner(uid);
                let o4 = four.owner(uid);
                o3 != o4
            })
            .count();
        assert!(
            moved < 5_000,
            "consistent hashing must move ~1/n of keys, moved {moved}/10000"
        );
    }
}
