//! The HTTP server: epoll I/O tier, compute worker pool, routing, and
//! the judge request handlers.
//!
//! Architecture (DESIGN.md §11, §17):
//!
//! ```text
//! epoll event loop ──framed requests──▶ compute pool (blocking handlers)
//!   (10k+ sockets,                          │ feature cache (F(r))
//!    one thread)                            ▼
//!        ◀──responses via eventfd──  micro-batcher ──▶ judge MLP
//! ```
//!
//! The event loop ([`crate::event_loop`]) owns every socket and does
//! nothing but framing and flushing; fully parsed requests cross to the
//! compute pool, where the handlers below run exactly as they did under
//! the old thread-per-connection model — admission gate, breaker,
//! micro-batcher, watchdog all unchanged, and every handler under
//! `catch_unwind` so a panicking request produces a 500 and the worker
//! survives.

use crate::admission::{AdmissionConfig, AdmissionGate};
use crate::batcher::{Batcher, JobError, JudgeJob, SubmitError};
use crate::breaker::{BreakerConfig, BreakerDecision, BreakerState, CircuitBreaker};
use crate::cache::{verdict_key, FeatureCache, VerdictCache};
use crate::event_loop::{self, EventLoopConfig, EventLoopHandle, Service};
use crate::http::{Limits, Request, Response};
use crate::registry::{LoadedModel, ModelRegistry};
use crate::watchdog::{Watchdog, WatchdogConfig};
use hisrect::{profile_fingerprint, Judgement, Precision};
use serde::{Deserialize, Serialize};
use std::net::{SocketAddr, TcpListener};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::mpsc::sync_channel;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Server tuning knobs; every CLI `serve` flag lands here.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7878` (port 0 picks one).
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Total feature-cache capacity (entries).
    pub cache_capacity: usize,
    /// Micro-batch flush-on-size threshold.
    pub batch_size: usize,
    /// Micro-batch flush-on-time threshold.
    pub batch_deadline: Duration,
    /// Bound on queued connections and queued judge jobs; beyond it the
    /// server answers 503 + `Retry-After`.
    pub queue_depth: usize,
    /// Inbound framing limits.
    pub limits: Limits,
    /// Inference precision the model registry loads at (`--precision`).
    pub precision: Precision,
    /// Deadline applied to `/judge` requests that carry no
    /// `X-Deadline-Ms` header.
    pub default_deadline: Duration,
    /// Admission-control gate ahead of the batcher (disabled by default).
    pub admission: AdmissionConfig,
    /// Circuit breaker around the learned-judge path.
    pub breaker: BreakerConfig,
    /// Batcher-stall supervision.
    pub watchdog: WatchdogConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".into(),
            workers: 4,
            cache_capacity: 4096,
            batch_size: 16,
            batch_deadline: Duration::from_millis(2),
            queue_depth: 128,
            limits: Limits::default(),
            precision: Precision::F32,
            default_deadline: Duration::from_secs(10),
            admission: AdmissionConfig::default(),
            breaker: BreakerConfig::default(),
            watchdog: WatchdogConfig::default(),
        }
    }
}

struct Shared {
    registry: ModelRegistry,
    cache: FeatureCache,
    batcher: Arc<Batcher>,
    admission: Arc<AdmissionGate>,
    breaker: CircuitBreaker,
    /// Recently served learned verdicts, read while the breaker is open.
    verdicts: VerdictCache,
    default_deadline: Duration,
}

/// The shard's compute-tier plug-in for the event loop: framed requests
/// land here on a worker thread, with the same panic isolation and
/// request counters the thread-per-connection model had.
struct ShardService {
    shared: Arc<Shared>,
}

impl Service for ShardService {
    fn handle(&self, request: &Request) -> Response {
        let start = Instant::now();
        let response = match catch_unwind(AssertUnwindSafe(|| route(&self.shared, request))) {
            Ok(r) => r,
            Err(_) => {
                obs::incr("serve/handler_panic");
                Response::error(500, "internal error: handler panicked")
            }
        };
        obs::incr("serve/requests");
        match response.status {
            400..=499 => obs::incr("serve/http_4xx"),
            500..=599 => obs::incr("serve/http_5xx"),
            _ => {}
        }
        obs::observe(
            "serve/request_latency_ms",
            start.elapsed().as_secs_f64() * 1e3,
        );
        response
    }

    fn overloaded(&self) -> Response {
        // Backpressure at the door: answered from the loop thread so
        // workers stay dedicated to real work. The Retry-After hint
        // adapts to the observed drain rate behind the full queue.
        let retry = self
            .shared
            .admission
            .retry_after_secs(self.shared.batcher.queue_len());
        Response::error(503, "connection queue full")
            .with_header("retry-after", &retry.to_string())
            .with_header("x-hisrect-shed", "queue")
    }
}

/// A running server. Dropping the handle shuts it down.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    event_loop: EventLoopHandle,
    watchdog: Watchdog,
}

/// Binds `config.addr`, starts the epoll event loop and its compute
/// pool, and returns immediately.
pub fn serve(config: ServeConfig, registry: ModelRegistry) -> std::io::Result<ServerHandle> {
    // `/metrics` is part of the serving contract, so the obs registry is
    // always on while a server runs. (Instrumentation never touches the
    // judge numerics — the golden-run suite pins that.)
    obs::set_enabled(true);
    // 10k+ keep-alive sockets need fd headroom beyond the usual 1024.
    event_loop::raise_nofile_limit();
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let admission = Arc::new(AdmissionGate::new(config.admission, config.queue_depth));
    let batcher = Arc::new(Batcher::new(
        config.batch_size,
        config.batch_deadline,
        config.queue_depth,
        Some(Arc::clone(&admission)),
    ));
    let watchdog = Watchdog::spawn(Arc::clone(&batcher), config.watchdog);
    let shared = Arc::new(Shared {
        registry,
        cache: FeatureCache::new(config.cache_capacity),
        batcher,
        admission,
        breaker: CircuitBreaker::new(config.breaker),
        verdicts: VerdictCache::new(config.cache_capacity),
        default_deadline: config.default_deadline,
    });

    let service = Arc::new(ShardService {
        shared: Arc::clone(&shared),
    });
    let event_loop = event_loop::start(
        listener,
        service,
        EventLoopConfig {
            workers: config.workers,
            queue_depth: config.queue_depth,
            limits: config.limits,
        },
    )?;

    Ok(ServerHandle {
        addr,
        shared,
        event_loop,
        watchdog,
    })
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Feature-cache `(hits, misses)` so far.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.shared.cache.hits(), self.shared.cache.misses())
    }

    /// Micro-batch `(batches, jobs)` flushed so far.
    pub fn batch_stats(&self) -> (u64, u64) {
        let stats = self.shared.batcher.stats();
        (
            stats.batches.load(std::sync::atomic::Ordering::Relaxed),
            stats.jobs.load(std::sync::atomic::Ordering::Relaxed),
        )
    }

    /// Stops the event loop, drains the compute pool, joins all threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Blocks until the server exits (it only exits via shutdown).
    pub fn wait(mut self) {
        self.event_loop.wait();
    }

    /// Flusher restarts the watchdog has performed so far.
    pub fn watchdog_restarts(&self) -> u64 {
        self.watchdog.restarts()
    }

    fn stop_and_join(&mut self) {
        self.watchdog.shutdown();
        self.event_loop.shutdown();
        self.shared.batcher.shutdown();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

// --------------------------------------------------------------------------
// Routing and handlers
// --------------------------------------------------------------------------

#[derive(Deserialize)]
struct JudgeRequest {
    i: usize,
    j: usize,
}

#[derive(Deserialize)]
struct JudgeBatchRequest {
    pairs: Vec<(usize, usize)>,
}

#[derive(Serialize)]
struct JudgeBatchResponse {
    judgements: Vec<Judgement>,
}

#[derive(Deserialize)]
struct ReloadRequest {
    model: Option<String>,
}

#[derive(Deserialize)]
struct CandidatesRequest {
    i: usize,
    k: usize,
}

#[derive(Serialize)]
struct HealthResponse {
    status: &'static str,
    /// Degradation summary: `ok`, `degraded` (breaker not closed) or
    /// `shedding` (admission rejected a request within the last second).
    state: &'static str,
    /// Circuit-breaker state: `closed`, `open` or `half-open`.
    breaker: &'static str,
    generation: u64,
    profiles: usize,
    /// Inference precision of the served model (`f32` / `int8`).
    precision: &'static str,
    /// Active kernel tier (`avx2` / `portable`).
    kernel: &'static str,
}

#[derive(Serialize)]
struct ReloadResponse {
    generation: u64,
}

fn route(shared: &Shared, request: &Request) -> Response {
    // Chaos trigger point: a worker hit by an injected panic must answer
    // 500 and live on (asserted by tests/chaos_http.rs).
    if faultsim::fires(faultsim::FaultKind::WorkerPanic) {
        panic!("injected worker panic");
    }
    // Chaos trigger point: a worker burning CPU instead of serving —
    // requests behind it see latency, not errors.
    if faultsim::fires(faultsim::FaultKind::CpuBurn) {
        obs::incr("serve/cpu_burn_injected");
        let until = Instant::now() + Duration::from_millis(50);
        while Instant::now() < until {
            std::hint::spin_loop();
        }
    }
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let model = shared.registry.current();
            let breaker = shared.breaker.state();
            let state = if breaker != BreakerState::Closed {
                "degraded"
            } else if shared.admission.shedding() {
                "shedding"
            } else {
                "ok"
            };
            ok_json(&HealthResponse {
                status: "ok",
                state,
                breaker: breaker.name(),
                generation: model.generation,
                profiles: shared.registry.corpus().profiles.len(),
                precision: model.service.precision().as_str(),
                kernel: if tensor::simd_active() {
                    "avx2"
                } else {
                    "portable"
                },
            })
        }
        ("GET", "/metrics") => Response::json(200, obs::snapshot().to_json()),
        ("POST", "/judge") => handle_judge(shared, request),
        ("POST", "/judge_batch") => handle_judge_batch(shared, &request.body),
        ("POST", "/candidates") => handle_candidates(shared, &request.body),
        ("POST", "/reload") => handle_reload(shared, &request.body),
        ("GET" | "POST", _) => Response::error(404, "no such endpoint"),
        _ => Response::error(405, "method not allowed"),
    }
}

fn ok_json<T: Serialize>(value: &T) -> Response {
    Response::json(200, serde_json::to_string(value).expect("serializable"))
}

fn parse_body<T: serde::Deserialize>(body: &[u8]) -> Result<T, Response> {
    let text =
        std::str::from_utf8(body).map_err(|_| Response::error(400, "request body is not UTF-8"))?;
    serde_json::from_str(text).map_err(|e| Response::error(400, &format!("bad request body: {e}")))
}

/// Resolves `F(r)` for a profile index through the cache.
fn cached_feature(
    shared: &Shared,
    model: &Arc<LoadedModel>,
    idx: usize,
) -> Result<Arc<Vec<f32>>, Response> {
    let corpus = shared.registry.corpus();
    if idx >= corpus.profiles.len() {
        return Err(Response::error(
            400,
            &format!(
                "profile index {idx} out of range (corpus has {} profiles)",
                corpus.profiles.len()
            ),
        ));
    }
    let profile = corpus.profile(idx);
    let key = (model.generation, profile.uid, profile_fingerprint(profile));
    Ok(shared
        .cache
        .get_or_compute(key, || model.service.features_for(profile)))
}

/// `/judge`: admission gate → breaker routing → batcher, with the
/// request deadline carried the whole way.
///
/// Outcome map: admission or queue rejection → 503 + adaptive
/// `Retry-After` + `x-hisrect-shed`; deadline expired in queue → 504 +
/// `x-hisrect-shed: deadline`; breaker open → 200 from the stale verdict
/// cache or the heuristic fallback, labeled `x-hisrect-degraded`.
fn handle_judge(shared: &Shared, request: &Request) -> Response {
    let req: JudgeRequest = match parse_body(&request.body) {
        Ok(r) => r,
        Err(resp) => return resp,
    };
    if let Err(retry_secs) = shared.admission.admit(shared.batcher.queue_len()) {
        return Response::error(503, "admission control: server overloaded")
            .with_header("retry-after", &retry_secs.to_string())
            .with_header("x-hisrect-shed", "admission");
    }
    let model = shared.registry.current();
    let decision = shared.breaker.admit_learned();
    if decision == BreakerDecision::Degraded {
        return degraded_judge(shared, &model, req.i, req.j);
    }
    let probing = decision == BreakerDecision::Probe;
    // A probe that bails out before the learned path can answer must
    // release the probe slot, or half-open would stick forever.
    let probe_failed = || {
        if probing {
            shared.breaker.record_failure();
        }
    };
    let (fa, fb) = match (
        cached_feature(shared, &model, req.i),
        cached_feature(shared, &model, req.j),
    ) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(resp), _) | (_, Err(resp)) => {
            probe_failed();
            return resp;
        }
    };
    let budget = match request.deadline_ms {
        Some(ms) => Duration::from_millis(ms),
        None => shared.default_deadline,
    };
    let deadline = Instant::now() + budget;
    let (tx, rx) = sync_channel(1);
    let job = JudgeJob {
        model: Arc::clone(&model),
        fa,
        fb,
        deadline: Some(deadline),
        responder: tx,
    };
    let submitted = Instant::now();
    match shared.batcher.submit(job) {
        Ok(()) => {}
        Err(SubmitError::Overloaded) => {
            probe_failed();
            let retry = shared
                .admission
                .retry_after_secs(shared.batcher.queue_len());
            return Response::error(503, "judge queue full")
                .with_header("retry-after", &retry.to_string())
                .with_header("x-hisrect-shed", "queue");
        }
        Err(SubmitError::Closed) => {
            probe_failed();
            return Response::error(503, "server shutting down").with_header("retry-after", "1");
        }
    }
    match rx.recv_timeout(Duration::from_secs(10)) {
        Ok(Ok(p)) => {
            // An over-budget success is recorded as a failure inside.
            shared.breaker.record_success(submitted.elapsed());
            shared
                .verdicts
                .insert(verdict_key(model.generation, req.i, req.j), p);
            ok_json(&Judgement::from_probability(req.i, req.j, p))
        }
        Ok(Err(JobError::Expired)) => {
            // Shed work is a capacity signal, not a model failure — it
            // does not trip the breaker (except to resolve a probe).
            probe_failed();
            Response::error(504, JobError::Expired.message())
                .with_header("x-hisrect-shed", "deadline")
        }
        Ok(Err(JobError::Panicked)) => {
            shared.breaker.record_failure();
            Response::error(500, JobError::Panicked.message())
        }
        Err(_) => {
            shared.breaker.record_failure();
            Response::error(500, "judge batch timed out")
        }
    }
}

/// Serves a degraded verdict while the learned path is circuit-broken:
/// a stale cached probability when one is still in the window, else the
/// spatial-heuristic fallback. Always labeled `x-hisrect-degraded`.
fn degraded_judge(shared: &Shared, model: &Arc<LoadedModel>, i: usize, j: usize) -> Response {
    let corpus = shared.registry.corpus();
    for idx in [i, j] {
        if idx >= corpus.profiles.len() {
            return Response::error(
                400,
                &format!(
                    "profile index {idx} out of range (corpus has {} profiles)",
                    corpus.profiles.len()
                ),
            );
        }
    }
    obs::incr("serve/degraded_responses");
    if let Some(p) = shared.verdicts.get(&verdict_key(model.generation, i, j)) {
        obs::incr("serve/degraded_stale");
        return ok_json(&Judgement::from_probability(i, j, p))
            .with_header("x-hisrect-degraded", "stale");
    }
    obs::incr("serve/degraded_fallback");
    let p = model
        .service
        .judge_degraded(corpus.profile(i), corpus.profile(j));
    ok_json(&Judgement::from_probability(i, j, p)).with_header("x-hisrect-degraded", "fallback")
}

/// An explicit batch skips the micro-batcher — it *is* a batch already —
/// and goes straight through the batched forward pass.
fn handle_judge_batch(shared: &Shared, body: &[u8]) -> Response {
    let req: JudgeBatchRequest = match parse_body(body) {
        Ok(r) => r,
        Err(resp) => return resp,
    };
    let model = shared.registry.current();
    let mut features = Vec::with_capacity(req.pairs.len());
    for &(i, j) in &req.pairs {
        let fa = match cached_feature(shared, &model, i) {
            Ok(f) => f,
            Err(resp) => return resp,
        };
        let fb = match cached_feature(shared, &model, j) {
            Ok(f) => f,
            Err(resp) => return resp,
        };
        features.push((fa, fb));
    }
    let pairs: Vec<(&[f32], &[f32])> = features
        .iter()
        .map(|(a, b)| (a.as_slice(), b.as_slice()))
        .collect();
    let probs = model.service.judge_features_batch(&pairs);
    let judgements = req
        .pairs
        .iter()
        .zip(probs)
        .map(|(&(i, j), p)| Judgement::from_probability(i, j, p))
        .collect();
    ok_json(&JudgeBatchResponse { judgements })
}

/// Top-k candidate co-located users for one profile's fresh tweet.
///
/// Served from the generation's own [`hisrect::CandidateService`]: the
/// index and the judge that scores its hits always come from the same
/// `Arc<LoadedModel>` snapshot, so a query racing `/reload` answers
/// entirely from the old or the new generation, never a torn mix. Scores
/// come from embeddings stored at index build, so the response is
/// byte-identical to the offline `hisrect candidates` CLI, cold or warm.
fn handle_candidates(shared: &Shared, body: &[u8]) -> Response {
    let req: CandidatesRequest = match parse_body(body) {
        Ok(r) => r,
        Err(resp) => return resp,
    };
    let model = shared.registry.current();
    let population = model.candidates.population();
    if req.k == 0 {
        return Response::error(400, "k must be at least 1");
    }
    if req.k > population {
        return Response::error(
            400,
            &format!("k {} exceeds population ({population} profiles)", req.k),
        );
    }
    match model.candidates.candidates(&model.service, req.i, req.k) {
        Some(set) => ok_json(&set),
        None => Response::error(
            400,
            &format!(
                "profile index {} out of range (corpus has {population} profiles)",
                req.i
            ),
        ),
    }
}

fn handle_reload(shared: &Shared, body: &[u8]) -> Response {
    let path = if body.is_empty() {
        None
    } else {
        match parse_body::<ReloadRequest>(body) {
            Ok(r) => r.model,
            Err(resp) => return resp,
        }
    };
    match shared.registry.reload(path.as_deref().map(Path::new)) {
        Ok(generation) => ok_json(&ReloadResponse { generation }),
        Err(e) => Response::error(500, &format!("reload failed: {e}")),
    }
}
