//! Sharded LRU cache of per-profile HisRect features `F(r)`.
//!
//! `Fv`/`Fc` features are a pure function of (model, profile), so repeated
//! judgements touching the same user skip the expensive featurizer forward
//! pass. Keys carry the model generation, which makes hot-reload
//! correctness free: entries from the previous model can never be returned
//! for the new one and simply age out of the LRU.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Cache key: model generation, user id, and the FNV-1a fingerprint of
/// the full profile content (see `hisrect::profile_fingerprint`).
pub type FeatureKey = (u64, u32, u64);

const NIL: usize = usize::MAX;

struct Entry {
    key: FeatureKey,
    value: Arc<Vec<f32>>,
    prev: usize,
    next: usize,
}

/// One shard: an intrusive doubly-linked LRU list over a slab, plus a
/// key → slot index. All operations are O(1).
struct Shard {
    map: HashMap<FeatureKey, usize>,
    slab: Vec<Entry>,
    free: Vec<usize>,
    /// Most recently used slot.
    head: usize,
    /// Least recently used slot.
    tail: usize,
    capacity: usize,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slab[slot].prev, self.slab[slot].next);
        match prev {
            NIL => self.head = next,
            p => self.slab[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slab[n].prev = prev,
        }
    }

    fn push_front(&mut self, slot: usize) {
        self.slab[slot].prev = NIL;
        self.slab[slot].next = self.head;
        match self.head {
            NIL => self.tail = slot,
            h => self.slab[h].prev = slot,
        }
        self.head = slot;
    }

    fn get(&mut self, key: &FeatureKey) -> Option<Arc<Vec<f32>>> {
        let slot = *self.map.get(key)?;
        if self.head != slot {
            self.unlink(slot);
            self.push_front(slot);
        }
        Some(Arc::clone(&self.slab[slot].value))
    }

    fn insert(&mut self, key: FeatureKey, value: Arc<Vec<f32>>) {
        if let Some(&slot) = self.map.get(&key) {
            self.slab[slot].value = value;
            if self.head != slot {
                self.unlink(slot);
                self.push_front(slot);
            }
            return;
        }
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            self.unlink(victim);
            self.map.remove(&self.slab[victim].key);
            self.free.push(victim);
        }
        let entry = Entry {
            key,
            value,
            prev: NIL,
            next: NIL,
        };
        let slot = match self.free.pop() {
            Some(s) => {
                self.slab[s] = entry;
                s
            }
            None => {
                self.slab.push(entry);
                self.slab.len() - 1
            }
        };
        self.map.insert(key, slot);
        self.push_front(slot);
    }
}

/// Concurrent feature cache: keys are spread over independently locked
/// shards so worker threads rarely contend.
pub struct FeatureCache {
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

const N_SHARDS: usize = 8;

impl FeatureCache {
    /// A cache holding at most (roughly) `capacity` features in total.
    pub fn new(capacity: usize) -> Self {
        let per_shard = capacity.div_ceil(N_SHARDS).max(1);
        Self {
            shards: (0..N_SHARDS)
                .map(|_| Mutex::new(Shard::new(per_shard)))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &FeatureKey) -> &Mutex<Shard> {
        // The fingerprint is already well mixed; fold in uid for users
        // sharing a fingerprint-free shard distribution.
        let h = key.2 ^ (key.1 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h % N_SHARDS as u64) as usize]
    }

    /// Looks up a feature, counting the hit/miss.
    pub fn get(&self, key: &FeatureKey) -> Option<Arc<Vec<f32>>> {
        let found = self
            .shard(key)
            .lock()
            .expect("cache shard poisoned")
            .get(key);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            obs::incr("serve/cache_hit");
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            obs::incr("serve/cache_miss");
        }
        found
    }

    /// Inserts (or refreshes) a feature.
    pub fn insert(&self, key: FeatureKey, value: Arc<Vec<f32>>) {
        self.shard(&key)
            .lock()
            .expect("cache shard poisoned")
            .insert(key, value);
    }

    /// Looks up a feature, computing and inserting it on a miss.
    pub fn get_or_compute(
        &self,
        key: FeatureKey,
        compute: impl FnOnce() -> Vec<f32>,
    ) -> Arc<Vec<f32>> {
        if let Some(v) = self.get(&key) {
            return v;
        }
        let v = Arc::new(compute());
        self.insert(key, Arc::clone(&v));
        v
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached features across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Cache key of a finished verdict: model generation plus the pair's
/// indices in canonical (low, high) order — the judge is symmetric, so
/// `(i, j)` and `(j, i)` share one slot.
pub type VerdictKey = (u64, usize, usize);

/// Builds the canonical [`VerdictKey`] for a pair under a generation.
pub fn verdict_key(generation: u64, i: usize, j: usize) -> VerdictKey {
    (generation, i.min(j), i.max(j))
}

/// Small FIFO cache of recently served verdicts, read when the circuit
/// breaker has the learned path open: a stale-but-exact probability beats
/// a heuristic one, so degraded reads consult this before falling back.
///
/// FIFO rather than LRU on purpose — reads while degraded must not churn
/// the order, and the window only needs to cover "recently answered"
/// pairs, not a working set.
pub struct VerdictCache {
    inner: Mutex<VerdictInner>,
    capacity: usize,
}

struct VerdictInner {
    map: HashMap<VerdictKey, f32>,
    order: std::collections::VecDeque<VerdictKey>,
}

impl VerdictCache {
    /// A cache remembering the last `capacity` distinct pair verdicts.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(VerdictInner {
                map: HashMap::new(),
                order: std::collections::VecDeque::new(),
            }),
            capacity: capacity.max(1),
        }
    }

    /// Records a verdict served by the learned path.
    pub fn insert(&self, key: VerdictKey, p: f32) {
        let mut inner = self.inner.lock().expect("verdict cache poisoned");
        if inner.map.insert(key, p).is_none() {
            inner.order.push_back(key);
            if inner.order.len() > self.capacity {
                if let Some(old) = inner.order.pop_front() {
                    inner.map.remove(&old);
                }
            }
        }
    }

    /// The stale verdict for a pair, if one is still in the window.
    pub fn get(&self, key: &VerdictKey) -> Option<f32> {
        self.inner
            .lock()
            .expect("verdict cache poisoned")
            .map
            .get(key)
            .copied()
    }

    /// Number of remembered verdicts.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("verdict cache poisoned").map.len()
    }

    /// True when no verdict is remembered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> FeatureKey {
        (1, n as u32, n)
    }

    fn val(n: u64) -> Arc<Vec<f32>> {
        Arc::new(vec![n as f32])
    }

    #[test]
    fn hit_and_miss_accounting() {
        let cache = FeatureCache::new(16);
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), val(1));
        assert_eq!(cache.get(&key(1)).unwrap()[0], 1.0);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used_per_shard() {
        // Capacity 8 over 8 shards → each shard holds exactly one entry,
        // so two keys landing in the same shard evict one another.
        let cache = FeatureCache::new(8);
        let mut same_shard = Vec::new();
        let probe = FeatureCache::new(8);
        for n in 0..64u64 {
            let k = key(n);
            if std::ptr::eq(probe.shard(&k), &probe.shards[0]) {
                same_shard.push(k);
            }
            if same_shard.len() == 2 {
                break;
            }
        }
        let (a, b) = (same_shard[0], same_shard[1]);
        cache.insert(a, val(1));
        cache.insert(b, val(2));
        assert!(cache.get(&a).is_none(), "a was evicted by b");
        assert!(cache.get(&b).is_some());
    }

    #[test]
    fn lru_order_follows_access() {
        // One shard of capacity 2: access a, insert c → b is the victim.
        let mut shard = Shard::new(2);
        shard.insert(key(1), val(1));
        shard.insert(key(2), val(2));
        assert!(shard.get(&key(1)).is_some());
        shard.insert(key(3), val(3));
        assert!(shard.get(&key(2)).is_none(), "lru entry evicted");
        assert!(shard.get(&key(1)).is_some());
        assert!(shard.get(&key(3)).is_some());
    }

    #[test]
    fn get_or_compute_computes_once() {
        let cache = FeatureCache::new(16);
        let mut calls = 0;
        let v1 = cache.get_or_compute(key(5), || {
            calls += 1;
            vec![5.0]
        });
        let v2 = cache.get_or_compute(key(5), || {
            calls += 1;
            vec![5.0]
        });
        assert_eq!(calls, 1);
        assert_eq!(v1, v2);
    }

    #[test]
    fn generation_is_part_of_the_key() {
        let cache = FeatureCache::new(16);
        cache.insert((1, 9, 42), val(1));
        assert!(cache.get(&(2, 9, 42)).is_none());
    }

    #[test]
    fn verdict_key_is_order_invariant() {
        assert_eq!(verdict_key(3, 7, 2), verdict_key(3, 2, 7));
        assert_ne!(verdict_key(3, 2, 7), verdict_key(4, 2, 7));
    }

    #[test]
    fn verdict_cache_round_trips_and_evicts_fifo() {
        let cache = VerdictCache::new(2);
        cache.insert(verdict_key(1, 0, 1), 0.9);
        cache.insert(verdict_key(1, 0, 2), 0.8);
        assert_eq!(cache.get(&verdict_key(1, 1, 0)), Some(0.9));
        cache.insert(verdict_key(1, 0, 3), 0.7);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&verdict_key(1, 0, 1)), None, "oldest evicted");
        assert_eq!(cache.get(&verdict_key(1, 0, 3)), Some(0.7));
    }

    #[test]
    fn verdict_reinsert_refreshes_value_without_growth() {
        let cache = VerdictCache::new(4);
        cache.insert(verdict_key(1, 0, 1), 0.4);
        cache.insert(verdict_key(1, 1, 0), 0.6);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&verdict_key(1, 0, 1)), Some(0.6));
    }
}
