#![warn(missing_docs)]

//! Online co-location inference server.
//!
//! Turns the offline HisRect pipeline into a service: a dependency-free
//! threaded HTTP/1.1 server answering live "are users ui and uj at the
//! same POI right now?" queries (the §5 judge over
//! `|E′(F(ri)) − E′(F(rj))|`) against a trained model snapshot.
//!
//! The crate is organized as the request's journey:
//!
//! - [`http`] — framing: parse requests under strict limits, write typed
//!   responses.
//! - [`server`] — accept loop, worker pool, routing, handlers.
//! - [`registry`] — the loaded model, with atomic hot-reload
//!   (`POST /reload`) under a generation counter.
//! - [`cache`] — sharded LRU of per-profile features `F(r)`: features
//!   change slowly per user, so they are computed once and reused across
//!   pairwise judgements.
//! - [`batcher`] — micro-batching: concurrent judge requests coalesce
//!   into one batched forward pass (bit-identical to single-pair calls),
//!   with 503 backpressure when the bounded queue fills.
//! - [`client`] — a minimal keep-alive client for tests and the load
//!   generator.
//!
//! Endpoints: `POST /judge`, `POST /judge_batch`, `GET /healthz`,
//! `GET /metrics`, `POST /reload`.

pub mod batcher;
pub mod cache;
pub mod client;
pub mod http;
pub mod registry;
pub mod server;

pub use client::{ClientResponse, HttpClient};
pub use registry::{LoadedModel, ModelRegistry};
pub use server::{serve, ServeConfig, ServerHandle};
