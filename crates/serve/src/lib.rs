#![warn(missing_docs)]

//! Online co-location inference server.
//!
//! Turns the offline HisRect pipeline into a service: a dependency-free
//! threaded HTTP/1.1 server answering live "are users ui and uj at the
//! same POI right now?" queries (the §5 judge over
//! `|E′(F(ri)) − E′(F(rj))|`) against a trained model snapshot.
//!
//! The crate is organized as the request's journey:
//!
//! - [`http`] — framing: incrementally parse requests under strict
//!   limits, write typed responses.
//! - [`conn`] — per-connection state machine (Reading → Busy → Writing)
//!   over non-blocking sockets.
//! - [`event_loop`] — the epoll readiness loop: one thread multiplexes
//!   every socket, a small worker pool runs the blocking compute.
//! - [`server`] — routing and handlers, mounted on the event loop.
//! - [`registry`] — the loaded model, with atomic hot-reload
//!   (`POST /reload`) under a generation counter.
//! - [`cache`] — sharded LRU of per-profile features `F(r)`: features
//!   change slowly per user, so they are computed once and reused across
//!   pairwise judgements.
//! - [`batcher`] — micro-batching: concurrent judge requests coalesce
//!   into one batched forward pass (bit-identical to single-pair calls),
//!   with 503 backpressure when the bounded queue fills and
//!   deadline-expired jobs shed before the forward pass.
//! - [`client`] — a minimal keep-alive client for tests and the load
//!   generator, with optional deterministic retry/backoff.
//!
//! Overload protection (DESIGN.md §15):
//!
//! - [`admission`] — token-bucket + queue-watermark gate ahead of the
//!   batcher, pricing its `Retry-After` hints off the observed drain
//!   rate.
//! - [`breaker`] — circuit breaker around the learned-judge path; while
//!   open, `/judge` serves degraded verdicts (stale cache reads or the
//!   core `FallbackJudge` heuristic) labeled `x-hisrect-degraded`.
//! - [`watchdog`] — supervision of the batcher flusher: a stalled
//!   heartbeat with work queued triggers an in-place restart.
//!
//! Sharded serving (DESIGN.md §17):
//!
//! - [`ring`] — consistent-hash ring mapping user ids to shard indices
//!   (FNV-1a vnodes; ownership is cache locality, not correctness).
//! - [`router`] — a front tier built on the same event loop that
//!   proxies `/judge`, `/judge_batch`, `/candidates` to the owning
//!   shard, health-checks and ejects dead shards, and runs draining
//!   rolling reloads.
//!
//! Endpoints: `POST /judge`, `POST /judge_batch`, `GET /healthz`,
//! `GET /metrics`, `POST /reload`.

pub mod admission;
pub mod batcher;
pub mod breaker;
pub mod cache;
pub mod client;
pub mod conn;
pub mod event_loop;
pub mod http;
pub mod registry;
pub mod ring;
pub mod router;
pub mod server;
pub mod watchdog;

pub use admission::{AdmissionConfig, AdmissionGate};
pub use batcher::Batcher;
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use client::{ClientResponse, HttpClient, RetryPolicy};
pub use event_loop::{EventLoopConfig, Service};
pub use registry::{LoadedModel, ModelRegistry};
pub use ring::HashRing;
pub use router::{route, RouterConfig, RouterHandle};
pub use server::{serve, ServeConfig, ServerHandle};
pub use watchdog::{Watchdog, WatchdogConfig};
