//! Chaos coverage for the request path: deterministic `faultsim` plans
//! drive misbehaving clients (slow reads, mid-body disconnects, oversized
//! bodies, malformed JSON) and an injected in-handler panic. The server
//! must answer with *typed* 4xx/5xx and keep serving — no worker ever
//! dies.

mod common;

use common::{start_server, test_pairs};
use faultsim::FaultKind;
use serve::client::read_response;
use serve::HttpClient;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::Duration;

// The fault plan is process-global; chaos tests must not interleave.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A client that consults the armed fault plan to decide how to
/// misbehave on this request. Each fault is one clean exchange — nothing
/// is written after the server may have closed the socket, so the
/// response (when one is due) is always readable. Returns the status, or
/// `None` when the fault is to vanish without waiting for one.
fn chaotic_judge_request(addr: SocketAddr, i: usize, j: usize) -> Option<u16> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let body = format!("{{\"i\":{i},\"j\":{j}}}");
    let head = |len: usize| format!("POST /judge HTTP/1.1\r\ncontent-length: {len}\r\n\r\n");

    if faultsim::fires(FaultKind::MidBodyDisconnect) {
        stream.write_all(head(body.len()).as_bytes()).unwrap();
        stream
            .write_all(&body.as_bytes()[..body.len() / 2])
            .unwrap();
        return None; // hang up mid-body
    }
    if faultsim::fires(FaultKind::SlowClient) {
        // Send half the head, then stall; the server's read timeout
        // answers before the rest would ever arrive.
        let full = head(body.len());
        stream
            .write_all(&full.as_bytes()[..full.len() / 2])
            .unwrap();
        stream.flush().unwrap();
        return Some(read_response(&mut stream).expect("read 408").status);
    }
    if faultsim::fires(FaultKind::OversizedBody) {
        // The declared length alone is over the limit — the server
        // rejects before any body byte is sent.
        stream.write_all(head(64 * 1024 * 1024).as_bytes()).unwrap();
        return Some(read_response(&mut stream).expect("read 413").status);
    }
    let body = if faultsim::fires(FaultKind::MalformedJson) {
        "{\"i\": oops,,".to_string()
    } else {
        body
    };
    stream.write_all(head(body.len()).as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    stream.flush().unwrap();
    Some(read_response(&mut stream).expect("read response").status)
}

fn assert_healthy(addr: SocketAddr) {
    let mut client = HttpClient::new(addr);
    let r = client.get("/healthz").unwrap();
    assert_eq!(r.status, 200, "server unhealthy after chaos: {}", r.body);
    let (i, j) = test_pairs(1)[0];
    let r = client
        .post("/judge", &format!("{{\"i\":{i},\"j\":{j}}}"))
        .unwrap();
    assert_eq!(r.status, 200, "judge broken after chaos: {}", r.body);
}

#[test]
fn slow_client_gets_request_timeout() {
    let _g = lock();
    faultsim::clear();
    let server = start_server(|c| {
        c.limits.read_timeout = Duration::from_millis(100);
    });
    faultsim::configure_str("slow-client@1").unwrap();
    let (i, j) = test_pairs(1)[0];
    assert_eq!(
        chaotic_judge_request(server.addr(), i, j),
        Some(408),
        "stalled request must get 408"
    );
    assert_healthy(server.addr());
    faultsim::clear();
    server.shutdown();
}

#[test]
fn mid_body_disconnect_never_kills_a_worker() {
    let _g = lock();
    faultsim::clear();
    let server = start_server(|_| {});
    faultsim::configure_str("disconnect@1").unwrap();
    let (i, j) = test_pairs(1)[0];
    assert_eq!(chaotic_judge_request(server.addr(), i, j), None);
    assert_healthy(server.addr());
    faultsim::clear();
    server.shutdown();
}

#[test]
fn oversized_body_is_rejected_with_413() {
    let _g = lock();
    faultsim::clear();
    let server = start_server(|_| {});
    faultsim::configure_str("oversize-body@1").unwrap();
    let (i, j) = test_pairs(1)[0];
    assert_eq!(chaotic_judge_request(server.addr(), i, j), Some(413));
    assert_healthy(server.addr());
    faultsim::clear();
    server.shutdown();
}

#[test]
fn malformed_json_is_rejected_with_400() {
    let _g = lock();
    faultsim::clear();
    let server = start_server(|_| {});
    faultsim::configure_str("malformed-json@1").unwrap();
    let (i, j) = test_pairs(1)[0];
    assert_eq!(chaotic_judge_request(server.addr(), i, j), Some(400));
    assert_healthy(server.addr());
    faultsim::clear();
    server.shutdown();
}

#[test]
fn combined_request_chaos_volley_keeps_the_server_alive() {
    let _g = lock();
    faultsim::clear();
    let server = start_server(|c| {
        c.limits.read_timeout = Duration::from_millis(100);
    });
    // One plan arming every request-path fault across successive
    // requests; the client consults the kinds in a fixed order
    // (disconnect, slow, oversize, malformed), so the sequence of typed
    // responses is fully deterministic.
    faultsim::configure_str("disconnect@2,slow-client@2,oversize-body@1,malformed-json@1").unwrap();
    let (i, j) = test_pairs(1)[0];
    assert_eq!(chaotic_judge_request(server.addr(), i, j), Some(413));
    assert_eq!(chaotic_judge_request(server.addr(), i, j), None);
    assert_eq!(chaotic_judge_request(server.addr(), i, j), Some(408));
    assert_eq!(chaotic_judge_request(server.addr(), i, j), Some(400));
    assert_eq!(chaotic_judge_request(server.addr(), i, j), Some(200));
    assert_healthy(server.addr());
    faultsim::clear();
    server.shutdown();
}

#[test]
fn injected_cpu_burn_only_costs_latency() {
    let _g = lock();
    faultsim::clear();
    let server = start_server(|_| {});
    let mut client = HttpClient::new(server.addr());
    faultsim::arm(FaultKind::CpuBurn, 1);
    let (i, j) = test_pairs(1)[0];
    let body = format!("{{\"i\":{i},\"j\":{j}}}");
    let start = std::time::Instant::now();
    let r = client.post("/judge", &body).unwrap();
    assert_eq!(r.status, 200, "a burning worker still answers: {}", r.body);
    assert!(
        start.elapsed() >= Duration::from_millis(45),
        "the burn must actually cost latency"
    );
    assert_healthy(server.addr());
    faultsim::clear();
    server.shutdown();
}

#[test]
fn injected_slow_judge_answers_200_and_never_kills_the_flusher() {
    let _g = lock();
    faultsim::clear();
    std::env::set_var("HISRECT_SLOW_JUDGE_MS", "100");
    let server = start_server(|_| {});
    let mut client = HttpClient::new(server.addr());
    faultsim::arm(FaultKind::SlowJudge, 1);
    let (i, j) = test_pairs(1)[0];
    let body = format!("{{\"i\":{i},\"j\":{j}}}");
    let r = client.post("/judge", &body).unwrap();
    assert_eq!(r.status, 200, "slow flush still answers: {}", r.body);
    // The default 5s latency budget is untouched by a 100ms crawl, so
    // the breaker stays closed and the next request is learned.
    let r = client.post("/judge", &body).unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    assert_eq!(r.header("x-hisrect-degraded"), None);
    assert_healthy(server.addr());
    std::env::remove_var("HISRECT_SLOW_JUDGE_MS");
    faultsim::clear();
    server.shutdown();
}

#[test]
fn injected_worker_panic_answers_500_and_the_worker_survives() {
    let _g = lock();
    faultsim::clear();
    let server = start_server(|_| {});
    let mut client = HttpClient::new(server.addr());
    faultsim::arm(FaultKind::WorkerPanic, 1);
    let (i, j) = test_pairs(1)[0];
    let body = format!("{{\"i\":{i},\"j\":{j}}}");
    let r = client.post("/judge", &body).unwrap();
    assert_eq!(r.status, 500, "injected panic must answer 500: {}", r.body);
    assert!(r.body.contains("panicked"), "{}", r.body);
    // The same worker pool keeps serving.
    let r = client.post("/judge", &body).unwrap();
    assert_eq!(r.status, 200, "worker died after panic: {}", r.body);
    assert_healthy(server.addr());
    faultsim::clear();
    server.shutdown();
}
