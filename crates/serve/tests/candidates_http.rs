//! Integration and chaos coverage for `POST /candidates`.
//!
//! The contract under test: the served endpoint is a thin transport over
//! the same `CandidateService` the offline CLI uses, so its JSON body is
//! *byte-identical* to the offline render — cold cache, warm cache, and
//! across `/reload`. Bad inputs get typed 400s, and misbehaving clients
//! (stalls, mid-body hangups) never kill a worker.

mod common;

use common::{fixture, start_server, test_pairs};
use faultsim::FaultKind;
use hisrect::{CandidateService, JudgeService, Precision};
use serve::client::read_response;
use serve::HttpClient;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::Duration;

// The fault plan is process-global; chaos tests must not interleave.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The offline answer: the same `CandidateService` construction the CLI
/// `hisrect candidates` command performs, rendered with the same
/// serializer.
fn offline_candidates_json(i: usize, k: usize) -> String {
    let fix = fixture();
    let service = JudgeService::load_with_precision(
        &fix.model_path,
        fix.corpus.world.pois.clone(),
        Precision::F32,
    )
    .expect("load fixture model");
    let candidates = CandidateService::build(&service, &fix.corpus);
    let set = candidates
        .candidates(&service, i, k)
        .expect("probe index in range");
    serde_json::to_string(&set).expect("serializable")
}

fn candidates_body(i: usize, k: usize) -> String {
    format!("{{\"i\":{i},\"k\":{k}}}")
}

fn assert_healthy(addr: SocketAddr) {
    let mut client = HttpClient::new(addr);
    let r = client.get("/healthz").unwrap();
    assert_eq!(r.status, 200, "server unhealthy after chaos: {}", r.body);
    let (i, _) = test_pairs(1)[0];
    let r = client.post("/candidates", &candidates_body(i, 3)).unwrap();
    assert_eq!(r.status, 200, "candidates broken after chaos: {}", r.body);
}

#[test]
fn served_candidates_are_byte_identical_to_offline_cold_and_warm() {
    let _g = lock();
    faultsim::clear();
    let server = start_server(|_| {});
    let (i, _) = test_pairs(1)[0];
    let expected = offline_candidates_json(i, 5);

    let mut client = HttpClient::new(server.addr());
    let cold = client.post("/candidates", &candidates_body(i, 5)).unwrap();
    assert_eq!(cold.status, 200, "{}", cold.body);
    assert_eq!(cold.body, expected, "cold served body differs from offline");
    let warm = client.post("/candidates", &candidates_body(i, 5)).unwrap();
    assert_eq!(warm.status, 200, "{}", warm.body);
    assert_eq!(warm.body, expected, "warm served body differs from offline");
    server.shutdown();
}

#[test]
fn candidate_scores_agree_with_the_judge_endpoint_contract() {
    let _g = lock();
    faultsim::clear();
    let server = start_server(|_| {});
    let (i, _) = test_pairs(1)[0];
    let mut client = HttpClient::new(server.addr());
    let r = client.post("/candidates", &candidates_body(i, 4)).unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    let set: serde_json::Value = serde_json::from_str(&r.body).unwrap();
    let list = set
        .get("candidates")
        .and_then(|c| c.as_array())
        .expect("candidates array");
    assert!(list.len() <= 4);
    for c in list {
        let p = c.get("p_co").and_then(|v| v.as_f64()).expect("p_co");
        assert!((0.0..=1.0).contains(&p), "p_co {p} out of [0,1]");
        let j = c.get("j").and_then(|v| v.as_u64()).expect("j") as usize;
        assert_ne!(j, i, "self in results");
        let flag = c.get("co_located").and_then(|v| v.as_bool()).expect("flag");
        assert_eq!(flag, p > 0.5);
    }
    server.shutdown();
}

#[test]
fn malformed_candidates_body_is_rejected_with_400() {
    let _g = lock();
    faultsim::clear();
    let server = start_server(|_| {});
    let mut client = HttpClient::new(server.addr());
    for bad in ["{\"i\": oops,,", "", "[1,2,3]", "{\"i\":0}"] {
        let r = client.post("/candidates", bad).unwrap();
        assert_eq!(r.status, 400, "body {bad:?} must 400, got: {}", r.body);
    }
    assert_healthy(server.addr());
    server.shutdown();
}

#[test]
fn unknown_uid_k_zero_and_oversized_k_get_typed_400s() {
    let _g = lock();
    faultsim::clear();
    let server = start_server(|_| {});
    let population = fixture().corpus.profiles.len();
    let mut client = HttpClient::new(server.addr());

    let r = client
        .post("/candidates", &candidates_body(population, 3))
        .unwrap();
    assert_eq!(r.status, 400, "{}", r.body);
    assert!(r.body.contains("out of range"), "{}", r.body);

    let r = client.post("/candidates", &candidates_body(0, 0)).unwrap();
    assert_eq!(r.status, 400, "{}", r.body);
    assert!(r.body.contains("k must be at least 1"), "{}", r.body);

    let r = client
        .post("/candidates", &candidates_body(0, population + 1))
        .unwrap();
    assert_eq!(r.status, 400, "{}", r.body);
    assert!(r.body.contains("exceeds population"), "{}", r.body);

    assert_healthy(server.addr());
    server.shutdown();
}

#[test]
fn candidates_racing_reload_always_see_a_coherent_generation() {
    let _g = lock();
    faultsim::clear();
    let server = start_server(|_| {});
    let (i, _) = test_pairs(1)[0];
    let expected = offline_candidates_json(i, 5);
    let addr = server.addr();

    // Hammer /candidates from two threads while the main thread reloads
    // the model twice. The snapshot on disk never changes, so *every*
    // response must be byte-identical to the offline render — a torn
    // generation (new judge scoring an old index, or a half-swapped
    // registry) would surface as a divergent body or a non-200.
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = HttpClient::new(addr);
                for _ in 0..25 {
                    let r = client.post("/candidates", &candidates_body(i, 5)).unwrap();
                    assert_eq!(r.status, 200, "candidates failed mid-reload: {}", r.body);
                    assert_eq!(r.body, expected, "response drifted across a reload");
                }
            })
        })
        .collect();
    let mut client = HttpClient::new(addr);
    for _ in 0..2 {
        let r = client.post("/reload", "").unwrap();
        assert_eq!(r.status, 200, "reload failed: {}", r.body);
    }
    for w in workers {
        w.join().expect("candidate worker panicked");
    }
    assert_healthy(addr);
    server.shutdown();
}

/// A client that consults the armed fault plan to misbehave on a
/// `/candidates` exchange. Returns the status, or `None` when the fault
/// is to vanish without waiting for one.
fn chaotic_candidates_request(addr: SocketAddr, i: usize, k: usize) -> Option<u16> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let body = candidates_body(i, k);
    let head = |len: usize| format!("POST /candidates HTTP/1.1\r\ncontent-length: {len}\r\n\r\n");

    if faultsim::fires(FaultKind::MidBodyDisconnect) {
        stream.write_all(head(body.len()).as_bytes()).unwrap();
        stream
            .write_all(&body.as_bytes()[..body.len() / 2])
            .unwrap();
        return None; // hang up mid-body
    }
    if faultsim::fires(FaultKind::SlowClient) {
        let full = head(body.len());
        stream
            .write_all(&full.as_bytes()[..full.len() / 2])
            .unwrap();
        stream.flush().unwrap();
        return Some(read_response(&mut stream).expect("read 408").status);
    }
    stream.write_all(head(body.len()).as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    stream.flush().unwrap();
    Some(read_response(&mut stream).expect("read response").status)
}

#[test]
fn slow_client_and_disconnect_on_candidates_never_kill_a_worker() {
    let _g = lock();
    faultsim::clear();
    let server = start_server(|c| {
        c.limits.read_timeout = Duration::from_millis(100);
    });
    let (i, _) = test_pairs(1)[0];

    faultsim::configure_str("slow-client@1").unwrap();
    assert_eq!(
        chaotic_candidates_request(server.addr(), i, 3),
        Some(408),
        "stalled candidates request must get 408"
    );
    assert_healthy(server.addr());

    faultsim::configure_str("disconnect@1").unwrap();
    assert_eq!(chaotic_candidates_request(server.addr(), i, 3), None);
    assert_healthy(server.addr());

    // The plan is drained; a clean exchange succeeds on the same pool.
    assert_eq!(chaotic_candidates_request(server.addr(), i, 3), Some(200));
    faultsim::clear();
    server.shutdown();
}
