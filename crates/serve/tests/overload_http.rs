//! Overload-protection integration coverage: request deadlines shed in
//! the batcher (504), admission control with adaptive `Retry-After`
//! (503), the circuit breaker degrading to stale/heuristic verdicts and
//! recovering through a half-open probe, and the watchdog restarting a
//! stalled flusher without losing queued jobs.

mod common;

use common::{start_server, test_pairs};
use serve::batcher::{Batcher, JobError, JudgeJob};
use serve::{AdmissionConfig, BreakerConfig, HttpClient, ModelRegistry, WatchdogConfig};
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// The fault plan and the slow-judge env knob are process-global; these
// tests must not interleave.
static OVERLOAD_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    OVERLOAD_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn judge_body(i: usize, j: usize) -> String {
    format!("{{\"i\":{i},\"j\":{j}}}")
}

#[test]
fn expired_deadline_is_shed_with_typed_504_and_close_deadlines_survive() {
    let _g = lock();
    faultsim::clear();
    // A long flush timer guarantees the 1ms deadline expires while the
    // job waits for the batch to fill.
    let server = start_server(|c| {
        c.batch_size = 64;
        c.batch_deadline = Duration::from_millis(120);
    });
    let mut client = HttpClient::new(server.addr());
    let (i, j) = test_pairs(1)[0];

    let r = client
        .post_with_headers("/judge", &judge_body(i, j), &[("x-deadline-ms", "1")])
        .unwrap();
    assert_eq!(r.status, 504, "expired job must be shed: {}", r.body);
    assert_eq!(r.header("x-hisrect-shed"), Some("deadline"));
    assert!(r.body.contains("deadline"), "{}", r.body);

    // The race in the other direction: a deadline beyond the flush timer
    // is answered normally.
    let r = client
        .post_with_headers("/judge", &judge_body(i, j), &[("x-deadline-ms", "5000")])
        .unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    assert_eq!(r.header("x-hisrect-degraded"), None);
    server.shutdown();
}

#[test]
fn job_expiring_behind_a_slow_batch_is_shed() {
    let _g = lock();
    faultsim::clear();
    std::env::set_var("HISRECT_SLOW_JUDGE_MS", "300");
    let server = start_server(|c| {
        c.batch_size = 1; // every job flushes alone, immediately
        c.batch_deadline = Duration::from_millis(1);
    });
    let addr = server.addr();
    let (i, j) = test_pairs(2)[0];
    let (i2, j2) = test_pairs(2)[1];

    // First request hits the injected slow flush and crawls; the second,
    // with a 50ms deadline, expires queued behind it.
    faultsim::configure_str("slow-judge@1").unwrap();
    let slow = std::thread::spawn(move || {
        let mut client = HttpClient::new(addr);
        client.post("/judge", &judge_body(i, j)).unwrap()
    });
    std::thread::sleep(Duration::from_millis(50));
    let mut client = HttpClient::new(addr);
    let r = client
        .post_with_headers("/judge", &judge_body(i2, j2), &[("x-deadline-ms", "50")])
        .unwrap();
    assert_eq!(r.status, 504, "queued-behind job must expire: {}", r.body);
    assert_eq!(r.header("x-hisrect-shed"), Some("deadline"));
    let slow_response = slow.join().unwrap();
    assert_eq!(slow_response.status, 200, "{}", slow_response.body);

    std::env::remove_var("HISRECT_SLOW_JUDGE_MS");
    faultsim::clear();
    server.shutdown();
}

#[test]
fn admission_gate_sheds_with_adaptive_retry_after_and_healthz_reports_it() {
    let _g = lock();
    faultsim::clear();
    let server = start_server(|c| {
        c.admission = AdmissionConfig {
            rate: 0.5, // refills far too slowly for back-to-back requests
            burst: 1.0,
            queue_high_watermark: 1.0,
        };
    });
    let mut client = HttpClient::new(server.addr());
    let (i, j) = test_pairs(1)[0];

    let r = client.post("/judge", &judge_body(i, j)).unwrap();
    assert_eq!(r.status, 200, "first request spends the burst: {}", r.body);
    let r = client.post("/judge", &judge_body(i, j)).unwrap();
    assert_eq!(r.status, 503, "empty bucket must shed: {}", r.body);
    assert_eq!(r.header("x-hisrect-shed"), Some("admission"));
    let retry: u64 = r
        .header("retry-after")
        .expect("shed response carries retry-after")
        .parse()
        .expect("retry-after is integral seconds");
    assert!(
        (1..=30).contains(&retry),
        "adaptive hint in range, got {retry}"
    );

    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert!(
        health.body.contains("\"state\":\"shedding\""),
        "healthz must report shedding: {}",
        health.body
    );
    server.shutdown();
}

#[test]
fn breaker_degrades_to_stale_then_fallback_and_recovers_via_probe() {
    let _g = lock();
    faultsim::clear();
    std::env::set_var("HISRECT_SLOW_JUDGE_MS", "200");
    let server = start_server(|c| {
        c.breaker = BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::from_millis(250),
            latency_budget: Duration::from_millis(50),
        };
    });
    let mut client = HttpClient::new(server.addr());
    let pairs = test_pairs(2);
    let (i, j) = pairs[0];
    let (i2, j2) = pairs[1];

    // Warm the learned verdict for (i, j) while the circuit is closed.
    let learned = client.post("/judge", &judge_body(i, j)).unwrap();
    assert_eq!(learned.status, 200, "{}", learned.body);
    assert_eq!(learned.header("x-hisrect-degraded"), None);

    // One slow flush blows the 50ms budget: with threshold 1 the breaker
    // opens on a single over-budget "success".
    faultsim::configure_str("slow-judge@1").unwrap();
    let r = client.post("/judge", &judge_body(i, j)).unwrap();
    assert_eq!(r.status, 200, "{}", r.body);

    // Open: the warmed pair is served byte-identically from the stale
    // verdict cache; an unseen pair falls back to the spatial heuristic.
    let health = client.get("/healthz").unwrap();
    assert!(
        health.body.contains("\"breaker\":\"open\"")
            && health.body.contains("\"state\":\"degraded\""),
        "healthz after trip: {}",
        health.body
    );
    let stale = client.post("/judge", &judge_body(i, j)).unwrap();
    assert_eq!(stale.status, 200, "{}", stale.body);
    assert_eq!(stale.header("x-hisrect-degraded"), Some("stale"));
    assert_eq!(stale.body, learned.body, "stale read is byte-identical");
    let fallback = client.post("/judge", &judge_body(i2, j2)).unwrap();
    assert_eq!(fallback.status, 200, "{}", fallback.body);
    assert_eq!(fallback.header("x-hisrect-degraded"), Some("fallback"));

    // After the cooldown the next request is the half-open probe; the
    // fault plan is exhausted, so it succeeds and closes the circuit.
    std::thread::sleep(Duration::from_millis(300));
    let probe = client.post("/judge", &judge_body(i, j)).unwrap();
    assert_eq!(probe.status, 200, "{}", probe.body);
    assert_eq!(probe.header("x-hisrect-degraded"), None, "probe is learned");
    assert_eq!(probe.body, learned.body, "recovered verdict identical");
    let health = client.get("/healthz").unwrap();
    assert!(
        health.body.contains("\"breaker\":\"closed\"") && health.body.contains("\"state\":\"ok\""),
        "healthz after recovery: {}",
        health.body
    );

    std::env::remove_var("HISRECT_SLOW_JUDGE_MS");
    faultsim::clear();
    server.shutdown();
}

#[test]
fn watchdog_restarts_stalled_flusher_without_losing_jobs() {
    let _g = lock();
    faultsim::clear();
    let server = start_server(|c| {
        c.watchdog = WatchdogConfig {
            interval: Duration::from_millis(20),
            stall_timeout: Duration::from_millis(100),
        };
    });
    let mut client = HttpClient::new(server.addr());
    let (i, j) = test_pairs(1)[0];

    // The live flusher is parked in recv (its stall check already ran),
    // so this request is served normally; the flusher then stalls on its
    // next loop iteration.
    faultsim::configure_str("stall@1").unwrap();
    let r = client.post("/judge", &judge_body(i, j)).unwrap();
    assert_eq!(r.status, 200, "{}", r.body);

    // This job lands in the queue behind the stalled flusher. The
    // watchdog must restart the flusher in place and the replacement
    // must answer it — no drop, no 5xx.
    let start = Instant::now();
    let r = client.post("/judge", &judge_body(i, j)).unwrap();
    assert_eq!(r.status, 200, "job survived the restart: {}", r.body);
    assert!(
        start.elapsed() >= Duration::from_millis(90),
        "the answer can only arrive after the stall timeout"
    );
    assert!(
        server.watchdog_restarts() >= 1,
        "watchdog must have restarted the flusher"
    );
    let metrics = client.get("/metrics").unwrap();
    assert!(
        metrics.body.contains("serve/watchdog_restarts"),
        "restart counter must be exported: {}",
        metrics.body
    );
    faultsim::clear();
    server.shutdown();
}

#[test]
fn shutdown_answers_expired_jobs_still_queued() {
    let _g = lock();
    faultsim::clear();
    let fix = common::fixture();
    let registry = ModelRegistry::load_with_precision(
        &fix.model_path,
        Arc::clone(&fix.corpus),
        hisrect::Precision::F32,
    )
    .expect("load fixture model");
    let model = registry.current();
    let (i, j) = test_pairs(1)[0];
    let fa = Arc::new(model.service.features_for(fix.corpus.profile(i)));
    let fb = Arc::new(model.service.features_for(fix.corpus.profile(j)));

    // Long flush timer: the job sits in the collect loop, already
    // expired, when shutdown closes the queue.
    let batcher = Batcher::new(64, Duration::from_millis(500), 8, None);
    let (tx, rx) = sync_channel(1);
    batcher
        .submit(JudgeJob {
            model,
            fa,
            fb,
            deadline: Some(Instant::now()),
            responder: tx,
        })
        .expect("submit");
    std::thread::sleep(Duration::from_millis(30));
    batcher.shutdown();
    match rx.try_recv() {
        Ok(Err(JobError::Expired)) => {}
        other => panic!("expired queued job must get a typed answer, got {other:?}"),
    }
}
