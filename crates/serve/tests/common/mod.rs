//! Shared fixture for the serving integration tests: one tiny trained
//! model saved to disk, plus helpers to start in-process servers on
//! ephemeral ports.

use hisrect::config::{ApproachSpec, HisRectConfig};
use hisrect::model::HisRectModel;
use serve::{serve, ModelRegistry, ServeConfig, ServerHandle};
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use twitter_sim::{generate, Dataset, SimConfig};

pub struct Fixture {
    pub corpus: Arc<Dataset>,
    pub model_path: PathBuf,
}

/// Trains the fixture model once per test binary.
pub fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let ds = generate(&SimConfig::tiny(5));
        let spec = ApproachSpec::tweet_only().with_config(|c| {
            *c = HisRectConfig {
                featurizer_iters: 40,
                judge_iters: 40,
                ..HisRectConfig::fast()
            };
        });
        let model = HisRectModel::train(&ds, &spec, 5);
        let dir = std::env::temp_dir().join(format!("hisrect-serve-fix-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create fixture dir");
        let model_path = dir.join("model.json");
        model.save_json(&model_path).expect("save fixture model");
        Fixture {
            corpus: Arc::new(ds),
            model_path,
        }
    })
}

/// Starts a server over the fixture model on an ephemeral port.
#[allow(dead_code)] // each test binary uses its own slice of the helpers
pub fn start_server(tune: impl FnOnce(&mut ServeConfig)) -> ServerHandle {
    start_server_with_precision(hisrect::Precision::F32, tune)
}

/// [`start_server`] at an explicit inference precision.
#[allow(dead_code)] // each test binary uses its own slice of the helpers
pub fn start_server_with_precision(
    precision: hisrect::Precision,
    tune: impl FnOnce(&mut ServeConfig),
) -> ServerHandle {
    let fix = fixture();
    let registry =
        ModelRegistry::load_with_precision(&fix.model_path, Arc::clone(&fix.corpus), precision)
            .expect("load fixture model");
    let mut config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        precision,
        ..ServeConfig::default()
    };
    // Keep idle keep-alive connections (and thus shutdown joins) short.
    config.limits.read_timeout = std::time::Duration::from_millis(300);
    tune(&mut config);
    serve(config, registry).expect("bind server")
}

/// A handful of test pair indices `(i, j)` from the fixture corpus.
pub fn test_pairs(n: usize) -> Vec<(usize, usize)> {
    let ds = &fixture().corpus;
    ds.test
        .pos_pairs
        .iter()
        .chain(&ds.test.neg_pairs)
        .take(n)
        .map(|p| (p.i, p.j))
        .collect()
}
