//! Integration tests: in-process server on an ephemeral port, driven by
//! the minimal keep-alive client. The central claim under test is the
//! serving contract: a served `/judge` response is byte-identical to the
//! offline judgement of the same pair with the same snapshot — cache
//! cold, cache warm, and through the micro-batcher.

mod common;

use common::{fixture, start_server, test_pairs};
use hisrect::{JudgeService, Judgement};
use serve::HttpClient;
use std::time::Duration;

/// The offline reference: exactly what the CLI computes for a pair,
/// loading the same snapshot from disk.
fn offline_judgement(i: usize, j: usize) -> String {
    let fix = fixture();
    let service = JudgeService::load(&fix.model_path, fix.corpus.world.pois.clone())
        .expect("load fixture model");
    let fa = service.features_for(fix.corpus.profile(i));
    let fb = service.features_for(fix.corpus.profile(j));
    let p = service.judge_features(&fa, &fb);
    serde_json::to_string(&Judgement::from_probability(i, j, p)).expect("serializable")
}

#[test]
fn judge_is_byte_identical_to_offline_cold_and_warm() {
    let server = start_server(|_| {});
    let mut client = HttpClient::new(server.addr());
    for (i, j) in test_pairs(3) {
        let expected = offline_judgement(i, j);
        let body = format!("{{\"i\":{i},\"j\":{j}}}");
        // Cold cache: features are computed on this first request.
        let cold = client.post("/judge", &body).unwrap();
        assert_eq!(cold.status, 200, "cold judge failed: {}", cold.body);
        assert_eq!(cold.body, expected, "cold response differs from offline");
        // Warm cache: same bytes again, now served from cached features.
        let warm = client.post("/judge", &body).unwrap();
        assert_eq!(warm.status, 200);
        assert_eq!(warm.body, expected, "warm response differs from offline");
    }
    let (hits, misses) = server.cache_stats();
    assert!(hits > 0, "repeat queries must hit the cache");
    assert!(misses > 0, "first queries must miss the cache");
    server.shutdown();
}

#[test]
fn judge_batch_matches_single_judgements() {
    let server = start_server(|_| {});
    let mut client = HttpClient::new(server.addr());
    let pairs = test_pairs(5);
    let body = format!(
        "{{\"pairs\":[{}]}}",
        pairs
            .iter()
            .map(|(i, j)| format!("[{i},{j}]"))
            .collect::<Vec<_>>()
            .join(",")
    );
    let batch = client.post("/judge_batch", &body).unwrap();
    assert_eq!(batch.status, 200, "batch failed: {}", batch.body);
    for (i, j) in &pairs {
        let single = client
            .post("/judge", &format!("{{\"i\":{i},\"j\":{j}}}"))
            .unwrap();
        assert_eq!(single.status, 200);
        // The batch body embeds each judgement with the same bytes the
        // single endpoint answers.
        assert!(
            batch.body.contains(&single.body),
            "batch response {} does not embed single judgement {}",
            batch.body,
            single.body
        );
    }
    server.shutdown();
}

#[test]
fn concurrent_judgements_coalesce_into_batches() {
    // A generous flush deadline makes coalescing deterministic enough to
    // assert on: 16 concurrent clients land well inside 50ms.
    let server = start_server(|c| {
        c.workers = 8;
        c.batch_size = 8;
        c.batch_deadline = Duration::from_millis(50);
    });
    let addr = server.addr();
    let pairs = test_pairs(4);
    let expected: Vec<String> = pairs
        .iter()
        .map(|&(i, j)| offline_judgement(i, j))
        .collect();

    // Warm the feature cache first so concurrent requests reach the
    // batcher together instead of serializing on feature computation.
    let mut warm = HttpClient::new(addr);
    for (i, j) in &pairs {
        let r = warm
            .post("/judge", &format!("{{\"i\":{i},\"j\":{j}}}"))
            .unwrap();
        assert_eq!(r.status, 200);
    }

    let threads: Vec<_> = (0..16)
        .map(|k| {
            let pairs = pairs.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = HttpClient::new(addr);
                for round in 0..4 {
                    let pick = (k + round) % pairs.len();
                    let (i, j) = pairs[pick];
                    let r = client
                        .post("/judge", &format!("{{\"i\":{i},\"j\":{j}}}"))
                        .unwrap();
                    assert_eq!(r.status, 200, "concurrent judge failed: {}", r.body);
                    assert_eq!(r.body, expected[pick], "response drifted under concurrency");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread panicked");
    }

    let (batches, jobs) = server.batch_stats();
    assert!(batches > 0);
    assert!(
        jobs as f64 / batches as f64 > 1.0,
        "16 concurrent clients must coalesce: {jobs} jobs over {batches} batches"
    );
    let (hits, _) = server.cache_stats();
    assert!(hits > 0);
    server.shutdown();
}

#[test]
fn reload_bumps_generation_and_answers_stay_identical() {
    let server = start_server(|_| {});
    let mut client = HttpClient::new(server.addr());
    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert!(health.body.contains("\"generation\":1"), "{}", health.body);

    let (i, j) = test_pairs(1)[0];
    let body = format!("{{\"i\":{i},\"j\":{j}}}");
    let before = client.post("/judge", &body).unwrap();
    assert_eq!(before.status, 200);

    let reload = client.post("/reload", "").unwrap();
    assert_eq!(reload.status, 200, "reload failed: {}", reload.body);
    assert!(reload.body.contains("\"generation\":2"), "{}", reload.body);
    let health = client.get("/healthz").unwrap();
    assert!(health.body.contains("\"generation\":2"), "{}", health.body);

    // Same snapshot path ⇒ same answer, recomputed under the new
    // generation (the old cache entries are unreachable by key).
    let after = client.post("/judge", &body).unwrap();
    assert_eq!(after.status, 200);
    assert_eq!(after.body, before.body);
    server.shutdown();
}

#[test]
fn metrics_endpoint_reports_serving_counters() {
    let server = start_server(|_| {});
    let mut client = HttpClient::new(server.addr());
    let (i, j) = test_pairs(1)[0];
    let r = client
        .post("/judge", &format!("{{\"i\":{i},\"j\":{j}}}"))
        .unwrap();
    assert_eq!(r.status, 200);
    let metrics = client.get("/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let parsed: serde::Value = serde_json::from_str(&metrics.body).expect("metrics is JSON");
    let counters = parsed.get("counters").expect("counters section");
    assert!(
        counters
            .get("serve/requests")
            .and_then(|v| v.as_u64())
            .unwrap_or(0)
            > 0,
        "metrics must count requests: {}",
        metrics.body
    );
    server.shutdown();
}

#[test]
fn typed_errors_for_bad_requests() {
    let server = start_server(|_| {});
    let mut client = HttpClient::new(server.addr());

    let r = client.post("/judge", "{\"i\":999999999,\"j\":0}").unwrap();
    assert_eq!(r.status, 400, "{}", r.body);
    assert!(r.body.contains("out of range"));

    let r = client.post("/judge", "definitely not json").unwrap();
    assert_eq!(r.status, 400);

    let r = client.get("/no_such_endpoint").unwrap();
    assert_eq!(r.status, 404);

    let r = client.request("DELETE", "/judge", None).unwrap();
    assert_eq!(r.status, 405);

    // The server is still healthy after the error volley.
    let r = client.get("/healthz").unwrap();
    assert_eq!(r.status, 200);
    server.shutdown();
}
