//! Event-loop and cluster coverage the thread-per-connection server
//! could not have passed: slow-loris trickle and stall storms, thousands
//! of idle keep-alive connections on a handful of threads, deterministic
//! connection-state fuzz via the faultsim slow-client/disconnect kinds,
//! and a router-tier rolling restart that must stay 5xx-free while each
//! shard drains.

mod common;

use common::{fixture, start_server, test_pairs};
use faultsim::FaultKind;
use serve::client::read_response;
use serve::{route, HttpClient, RouterConfig, ServerHandle};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// The fault plan is process-global; tests that arm it must not overlap.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn judge_body(i: usize, j: usize) -> String {
    format!("{{\"i\":{i},\"j\":{j}}}")
}

fn judge_head(len: usize) -> String {
    format!("POST /judge HTTP/1.1\r\ncontent-length: {len}\r\n\r\n")
}

/// A request trickled at the server a few bytes at a time — the classic
/// slow loris that ties up one blocking thread per connection. The epoll
/// loop must frame it incrementally and still answer 200.
#[test]
fn slow_loris_trickle_still_completes() {
    let server = start_server(|c| {
        c.limits.read_timeout = Duration::from_secs(5);
    });
    let (i, j) = test_pairs(1)[0];
    let body = judge_body(i, j);
    let raw = format!("{}{}", judge_head(body.len()), body);

    // The reference answer over a normal client.
    let mut client = HttpClient::new(server.addr());
    let expected = client.post("/judge", &body).unwrap();
    assert_eq!(expected.status, 200, "{}", expected.body);

    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    for chunk in raw.as_bytes().chunks(3) {
        stream.write_all(chunk).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    let resp = read_response(&mut stream).expect("trickled request answered");
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(
        resp.body, expected.body,
        "trickled framing must not change the answer"
    );
    server.shutdown();
}

/// A storm of connections that stall mid-request must not starve live
/// traffic: with thread-per-connection, 64 stalled sockets would pin 64
/// worker threads; on the event loop they cost 64 idle registrations
/// until the timeout scan answers each with 408.
#[test]
fn stalled_loris_storm_does_not_starve_live_traffic() {
    let server = start_server(|c| {
        c.limits.read_timeout = Duration::from_millis(300);
    });
    let addr = server.addr();

    // 64 connections send half a request head and stall forever.
    let mut stalled = Vec::new();
    for _ in 0..64 {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let head = judge_head(2);
        s.write_all(&head.as_bytes()[..head.len() / 2]).unwrap();
        s.flush().unwrap();
        stalled.push(s);
    }

    // Live traffic keeps answering promptly while the stalls are open.
    let (i, j) = test_pairs(1)[0];
    let mut client = HttpClient::new(addr);
    let start = Instant::now();
    for _ in 0..10 {
        let r = client.post("/judge", &judge_body(i, j)).unwrap();
        assert_eq!(r.status, 200, "{}", r.body);
    }
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "live traffic starved behind stalled connections: {:?}",
        start.elapsed()
    );

    // Every stalled connection is answered with a typed 408.
    for mut s in stalled {
        let r = read_response(&mut s).expect("stalled conn gets a response");
        assert_eq!(r.status, 408, "{}", r.body);
    }
    server.shutdown();
}

/// Thousands of idle keep-alive connections, sized to the process fd
/// limit (both ends live in this process, so each connection costs two
/// descriptors). The server must hold them all open and still answer on
/// any of them — the headline capability the epoll rewrite buys.
#[test]
fn idle_keepalive_connections_scale_to_the_fd_limit() {
    let server = start_server(|c| {
        // Idle conns must survive the whole test.
        c.limits.read_timeout = Duration::from_secs(120);
    });
    let addr = server.addr();
    let limit = serve::event_loop::raise_nofile_limit();
    // Keep ~1k descriptors of headroom for the rest of the test binary.
    let conns = (10_000u64).min((limit.saturating_sub(1_024)) / 2) as usize;
    assert!(
        conns >= 1_000,
        "fd limit {limit} leaves no room for the test"
    );

    let (i, j) = test_pairs(1)[0];
    let body = judge_body(i, j);
    let raw = format!("{}{}", judge_head(body.len()), body);

    let mut sockets = Vec::with_capacity(conns);
    for n in 0..conns {
        match TcpStream::connect(addr) {
            Ok(s) => sockets.push(s),
            Err(e) => panic!("connect #{n} of {conns} failed: {e}"),
        }
    }

    // Exercise a spread of the held connections; the rest stay idle.
    for &probe in &[0usize, conns / 2, conns - 1] {
        let s = &mut sockets[probe];
        s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let r = read_response(s).expect("held connection still answers");
        assert_eq!(r.status, 200, "conn #{probe}: {}", r.body);
    }

    // And a fresh connection still gets in past the held crowd.
    let mut client = HttpClient::new(addr);
    let r = client.post("/judge", &body).unwrap();
    assert_eq!(r.status, 200, "{}", r.body);

    drop(sockets);
    server.shutdown();
}

/// Connection-state fuzz via the faultsim `disconnect` and `slow-client`
/// kinds: each round arms one mid-body hangup and one half-head stall,
/// then fires 8 concurrent connections that consult the plan — exactly
/// two misbehave (whichever threads win the trigger race), the rest are
/// good requests. A fault fires once per arming, so the outcome totals
/// across rounds are exact; the loop must keep every good request at 200
/// and never wedge.
#[test]
fn connection_state_fuzz_with_faultsim_kinds() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 10;
    let _g = lock();
    faultsim::clear();
    let server = start_server(|c| {
        c.limits.read_timeout = Duration::from_millis(150);
    });
    let addr = server.addr();
    let (i, j) = test_pairs(1)[0];

    let (mut hangups, mut n_408, mut n_200, mut other) = (0, 0, 0, 0);
    for _round in 0..ROUNDS {
        faultsim::configure_str("disconnect@1,slow-client@1").unwrap();
        let workers: Vec<_> = (0..THREADS)
            .map(|_| {
                std::thread::spawn(move || -> (usize, usize, usize, usize) {
                    let body = judge_body(i, j);
                    let mut s = TcpStream::connect(addr).unwrap();
                    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                    if faultsim::fires(FaultKind::MidBodyDisconnect) {
                        s.write_all(judge_head(body.len()).as_bytes()).unwrap();
                        s.write_all(&body.as_bytes()[..body.len() / 2]).unwrap();
                        return (1, 0, 0, 0); // vanish mid-body
                    }
                    if faultsim::fires(FaultKind::SlowClient) {
                        let head = judge_head(body.len());
                        s.write_all(&head.as_bytes()[..head.len() / 2]).unwrap();
                        s.flush().unwrap();
                        return match read_response(&mut s).expect("stall answered").status {
                            408 => (0, 1, 0, 0),
                            _ => (0, 0, 0, 1),
                        };
                    }
                    s.write_all(judge_head(body.len()).as_bytes()).unwrap();
                    s.write_all(body.as_bytes()).unwrap();
                    match read_response(&mut s).expect("good request answered").status {
                        200 => (0, 0, 1, 0),
                        _ => (0, 0, 0, 1),
                    }
                })
            })
            .collect();
        for w in workers {
            let (h, a, b, o) = w.join().expect("fuzz thread panicked");
            hangups += h;
            n_408 += a;
            n_200 += b;
            other += o;
        }
    }
    assert_eq!(hangups, ROUNDS, "every armed disconnect must fire");
    assert_eq!(n_408, ROUNDS, "every armed stall must be answered 408");
    assert_eq!(
        n_200,
        ROUNDS * (THREADS - 2),
        "good requests must all be 200"
    );
    assert_eq!(other, 0, "no unexpected statuses under fuzz");

    let mut client = HttpClient::new(addr);
    let r = client.get("/healthz").unwrap();
    assert_eq!(r.status, 200, "server unhealthy after fuzz: {}", r.body);
    faultsim::clear();
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Router tier
// ---------------------------------------------------------------------------

fn start_shards(n: usize) -> Vec<ServerHandle> {
    (0..n)
        .map(|_| {
            start_server(|c| {
                c.limits.read_timeout = Duration::from_secs(10);
            })
        })
        .collect()
}

fn start_router(shards: &[ServerHandle]) -> serve::RouterHandle {
    let config = RouterConfig {
        addr: "127.0.0.1:0".into(),
        shards: shards.iter().map(|s| s.addr().to_string()).collect(),
        workers: 4,
        health_interval: Duration::from_millis(50),
        ..RouterConfig::default()
    };
    let router = route(config).expect("bind router");
    wait_for_up(router.addr(), shards.len());
    router
}

/// Polls the router's `/healthz` until it reports `want` shards up.
fn wait_for_up(addr: SocketAddr, want: usize) {
    let mut client = HttpClient::new(addr);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if let Ok(r) = client.get("/healthz") {
            if r.status == 200 && r.body.contains(&format!("\"shards_up\":{want}")) {
                return;
            }
        }
        assert!(
            Instant::now() < deadline,
            "router never saw {want} shards up"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Routed answers must be byte-identical to what a shard (and therefore
/// the offline CLI, per the existing byte-identity suites) returns —
/// sharding is cache locality, never a semantic boundary.
#[test]
fn routed_responses_are_byte_identical_to_direct_shard() {
    let shards = start_shards(2);
    let router = start_router(&shards);
    let mut via_router = HttpClient::new(router.addr());
    let mut direct = HttpClient::new(shards[0].addr());

    for (i, j) in test_pairs(8) {
        let body = judge_body(i, j);
        let want = direct.post("/judge", &body).unwrap();
        let got = via_router.post("/judge", &body).unwrap();
        assert_eq!(got.status, want.status);
        assert_eq!(got.body, want.body, "routed /judge differs for ({i},{j})");

        let cbody = format!("{{\"i\":{i},\"k\":3}}");
        let want = direct.post("/candidates", &cbody).unwrap();
        let got = via_router.post("/candidates", &cbody).unwrap();
        assert_eq!(got.status, want.status);
        assert_eq!(got.body, want.body, "routed /candidates differs for {i}");
    }

    // Batch: scattered across shards by owner, gathered in order, and
    // still byte-identical to a single shard answering the whole batch.
    let pairs: Vec<String> = test_pairs(6)
        .iter()
        .map(|(i, j)| format!("[{i},{j}]"))
        .collect();
    let batch = format!("{{\"pairs\":[{}]}}", pairs.join(","));
    let want = direct.post("/judge_batch", &batch).unwrap();
    let got = via_router.post("/judge_batch", &batch).unwrap();
    assert_eq!(got.status, want.status);
    assert_eq!(
        got.body, want.body,
        "scatter-gather changed the batch bytes"
    );

    router.shutdown();
    for s in shards {
        s.shutdown();
    }
}

/// The rolling-restart guarantee: while `POST /reload` drains, reloads
/// and undrains each shard in turn, continuous `/judge` traffic through
/// the router must see zero 5xx and zero transport errors.
#[test]
fn rolling_reload_keeps_traffic_5xx_free() {
    let shards = start_shards(2);
    let router = start_router(&shards);
    let addr = router.addr();
    let stop = Arc::new(AtomicBool::new(false));

    let pairs = test_pairs(4);
    let clients: Vec<_> = (0..4usize)
        .map(|t| {
            let stop = Arc::clone(&stop);
            let pairs = pairs.clone();
            std::thread::spawn(move || -> (u64, u64, u64) {
                let mut client = HttpClient::new(addr);
                let (mut ok, mut err5xx, mut transport) = (0u64, 0u64, 0u64);
                let mut n = t;
                while !stop.load(Ordering::Relaxed) {
                    let (i, j) = pairs[n % pairs.len()];
                    n += 1;
                    match client.post("/judge", &judge_body(i, j)) {
                        Ok(r) if r.status == 200 => ok += 1,
                        Ok(r) if r.status >= 500 => err5xx += 1,
                        Ok(_) => {}
                        Err(_) => transport += 1,
                    }
                }
                (ok, err5xx, transport)
            })
        })
        .collect();

    // Let traffic establish, then roll the whole cluster twice.
    std::thread::sleep(Duration::from_millis(100));
    let mut admin = HttpClient::new(addr);
    for roll in 0..2 {
        let r = admin.post("/reload", "").unwrap();
        assert_eq!(r.status, 200, "rolling reload {roll} failed: {}", r.body);
        std::thread::sleep(Duration::from_millis(100));
    }
    stop.store(true, Ordering::Relaxed);
    let (mut ok, mut err5xx, mut transport) = (0, 0, 0);
    for c in clients {
        let (o, e, t) = c.join().expect("client thread panicked");
        ok += o;
        err5xx += e;
        transport += t;
    }
    assert!(ok > 0, "no request succeeded; the test is vacuous");
    assert_eq!(err5xx, 0, "rolling reload must be invisible: {err5xx} 5xx");
    assert_eq!(transport, 0, "transport errors during rolling reload");

    // Both shards advanced a generation per roll (restarted at 1).
    let health = admin.get("/healthz").unwrap();
    assert!(
        health.body.contains("\"generations\":[3,3]"),
        "expected generation 3 on both shards: {}",
        health.body
    );

    router.shutdown();
    for s in shards {
        s.shutdown();
    }
}

/// Killing a shard mid-traffic: the router fails over along the ring
/// immediately (so clients never see the death) and ejects the shard
/// from `/healthz` once consecutive probes fail.
#[test]
fn shard_kill_fails_over_and_ejects() {
    let mut shards = start_shards(2);
    let router = start_router(&shards);
    let addr = router.addr();

    let victim = shards.pop().unwrap();
    victim.shutdown();

    // Every user keeps getting answers — failover covers the dead
    // shard's keyspace with at most one transport retry inside the
    // router, never a 5xx.
    let mut client = HttpClient::new(addr);
    for (i, j) in test_pairs(8) {
        let r = client.post("/judge", &judge_body(i, j)).unwrap();
        assert_eq!(r.status, 200, "({i},{j}) after shard kill: {}", r.body);
    }

    // The health poller notices and ejects.
    wait_for_up(addr, 1);

    router.shutdown();
    for s in shards {
        s.shutdown();
    }
}

/// Byte-identity of `/judge` via the router against the *offline* model:
/// the same judgement JSON the serving stack produces must come back
/// through router → shard → batcher unchanged. (The shard-vs-offline leg
/// is pinned by the existing suites; this closes router-vs-shard.)
#[test]
fn routed_judgement_matches_offline_model() {
    let fix = fixture();
    let model = hisrect::HisRectModel::load_json(&fix.model_path).expect("fixture model");
    let shards = start_shards(1);
    let router = start_router(&shards);
    let mut client = HttpClient::new(router.addr());
    let (i, j) = test_pairs(1)[0];
    let r = client.post("/judge", &judge_body(i, j)).unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    let offline = model.judge_pair(&fix.corpus, i, j);
    let served: serde::Value = serde_json::from_str(&r.body).unwrap();
    let got = served
        .get("p_co")
        .and_then(|v| v.as_f64())
        .expect("p_co field");
    // f32 -> JSON text -> f64 is exact, so the routed probability must
    // equal the offline one to the last bit.
    assert_eq!(got, offline as f64, "routed p_co differs from offline");
    router.shutdown();
    for s in shards {
        s.shutdown();
    }
}
