//! Integration tests for the quantized serving path: an int8 server must
//! answer `/judge` with exactly the bytes the offline int8 service
//! produces, the micro-batched path must stay verdict-identical to
//! per-request judgement, and `/healthz` must advertise the precision
//! and kernel tier so loadgen can record them.

mod common;

use common::{fixture, start_server_with_precision, test_pairs};
use hisrect::{JudgeService, Judgement, Precision};
use serve::HttpClient;
use std::time::Duration;

/// The offline int8 reference: the same snapshot, quantized at load the
/// way the registry does it.
fn offline_int8_judgement(i: usize, j: usize) -> String {
    let fix = fixture();
    let service = JudgeService::load_with_precision(
        &fix.model_path,
        fix.corpus.world.pois.clone(),
        Precision::Int8,
    )
    .expect("load fixture model at int8");
    let fa = service.features_for(fix.corpus.profile(i));
    let fb = service.features_for(fix.corpus.profile(j));
    let p = service.judge_features(&fa, &fb);
    serde_json::to_string(&Judgement::from_probability(i, j, p)).expect("serializable")
}

#[test]
fn int8_judge_is_byte_identical_to_offline_int8() {
    let server = start_server_with_precision(Precision::Int8, |_| {});
    let mut client = HttpClient::new(server.addr());
    for (i, j) in test_pairs(3) {
        let expected = offline_int8_judgement(i, j);
        let body = format!("{{\"i\":{i},\"j\":{j}}}");
        let cold = client.post("/judge", &body).unwrap();
        assert_eq!(cold.status, 200, "cold judge failed: {}", cold.body);
        assert_eq!(
            cold.body, expected,
            "cold int8 response differs from offline"
        );
        let warm = client.post("/judge", &body).unwrap();
        assert_eq!(warm.status, 200);
        assert_eq!(
            warm.body, expected,
            "warm int8 response differs from offline"
        );
    }
    server.shutdown();
}

#[test]
fn int8_batch_matches_single_judgements() {
    // A generous deadline so concurrent submissions actually coalesce;
    // per-row activation scales make a fused batch row bit-identical to
    // the single-pair call, so the bytes must agree regardless.
    let server = start_server_with_precision(Precision::Int8, |c| {
        c.batch_deadline = Duration::from_millis(10);
    });
    let mut client = HttpClient::new(server.addr());
    let pairs = test_pairs(5);
    let body = format!(
        "{{\"pairs\":[{}]}}",
        pairs
            .iter()
            .map(|(i, j)| format!("[{i},{j}]"))
            .collect::<Vec<_>>()
            .join(",")
    );
    let batch = client.post("/judge_batch", &body).unwrap();
    assert_eq!(batch.status, 200, "batch failed: {}", batch.body);
    for (i, j) in &pairs {
        let single = client
            .post("/judge", &format!("{{\"i\":{i},\"j\":{j}}}"))
            .unwrap();
        assert_eq!(single.status, 200);
        assert!(
            batch.body.contains(&single.body),
            "int8 batch response {} does not embed single judgement {}",
            batch.body,
            single.body
        );
    }
    server.shutdown();
}

#[test]
fn healthz_reports_precision_and_kernel() {
    let server = start_server_with_precision(Precision::Int8, |_| {});
    let mut client = HttpClient::new(server.addr());
    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert!(
        health.body.contains("\"precision\":\"int8\""),
        "healthz must report int8 precision: {}",
        health.body
    );
    let kernel_ok = health.body.contains("\"kernel\":\"avx2\"")
        || health.body.contains("\"kernel\":\"portable\"");
    assert!(
        kernel_ok,
        "healthz must report the kernel tier: {}",
        health.body
    );
    server.shutdown();
}
