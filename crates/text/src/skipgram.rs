//! Skip-gram word vectors with negative sampling (Mikolov et al., \[53\]).
//!
//! The paper trains word vectors over the contents of all training
//! timelines and feeds them to BiLSTM-C as fixed inputs (§4.2). This is a
//! plain SGNS implementation: for each (center, context) pair within a
//! window, maximize `log σ(u_ctx · v_cen)` plus `k` negative samples drawn
//! from the unigram^0.75 distribution.

use crate::vocab::Vocab;
use rand::Rng;
use serde::{Deserialize, Serialize};
use tensor::Matrix;

/// Skip-gram hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SkipGramConfig {
    /// Embedding dimensionality `M`. The paper uses 512 and notes the value
    /// "has little impact"; the simulator-scale default is smaller.
    pub dim: usize,
    /// Max distance between center and context.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// SGD learning rate (linearly decayed over training).
    pub lr: f32,
    /// Number of passes over the corpus.
    pub epochs: usize,
}

impl Default for SkipGramConfig {
    fn default() -> Self {
        Self {
            dim: 32,
            window: 3,
            negatives: 5,
            lr: 0.05,
            epochs: 3,
        }
    }
}

/// Trained skip-gram embeddings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SkipGram {
    cfg: SkipGramConfig,
    /// Center ("input") vectors — the embeddings consumers use.
    input: Matrix,
    /// Context ("output") vectors.
    output: Matrix,
    /// Cumulative unigram^0.75 table for negative sampling.
    cdf: Vec<f64>,
}

impl SkipGram {
    /// Initializes embeddings for `vocab` (uniform in ±0.5/dim, the
    /// word2vec convention) without training.
    pub fn new<R: Rng>(vocab: &Vocab, cfg: SkipGramConfig, rng: &mut R) -> Self {
        let n = vocab.len();
        let bound = 0.5 / cfg.dim as f32;
        let input = Matrix::from_fn(n, cfg.dim, |_, _| rng.gen_range(-bound..bound));
        let output = Matrix::zeros(n, cfg.dim);
        let weights = vocab.unigram_weights();
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for w in weights {
            acc += w;
            cdf.push(acc);
        }
        Self {
            cfg,
            input,
            output,
            cdf,
        }
    }

    /// Trains over encoded documents (`Vec<usize>` id streams). Returns the
    /// mean SGNS loss of the final epoch.
    #[allow(clippy::needless_range_loop)] // window scan over positions, not elements
    pub fn train<R: Rng>(&mut self, docs: &[Vec<usize>], rng: &mut R) -> f32 {
        let total_steps: usize =
            docs.iter().map(|d| d.len()).sum::<usize>().max(1) * self.cfg.epochs.max(1);
        let mut step = 0usize;
        let mut last_epoch_loss = 0.0f64;
        for _epoch in 0..self.cfg.epochs {
            let mut epoch_loss = 0.0f64;
            let mut epoch_pairs = 0usize;
            for doc in docs {
                for (center_pos, &center) in doc.iter().enumerate() {
                    // Dynamic window, as in word2vec.
                    let w = rng.gen_range(1..=self.cfg.window);
                    let lo = center_pos.saturating_sub(w);
                    let hi = (center_pos + w).min(doc.len().saturating_sub(1));
                    let lr = self.cfg.lr * (1.0 - step as f32 / total_steps as f32).max(0.05);
                    for ctx_pos in lo..=hi {
                        if ctx_pos == center_pos {
                            continue;
                        }
                        epoch_loss += self.sgns_step(center, doc[ctx_pos], lr, rng) as f64;
                        epoch_pairs += 1;
                    }
                    step += 1;
                }
            }
            last_epoch_loss = epoch_loss / epoch_pairs.max(1) as f64;
        }
        last_epoch_loss as f32
    }

    /// One positive pair plus `negatives` sampled negatives; returns the
    /// pair's loss.
    #[allow(clippy::needless_range_loop)] // parallel-array updates read clearer indexed
    fn sgns_step<R: Rng>(&mut self, center: usize, context: usize, lr: f32, rng: &mut R) -> f32 {
        let dim = self.cfg.dim;
        let mut grad_center = vec![0.0f32; dim];
        let mut loss = 0.0f32;
        for neg in 0..=self.cfg.negatives {
            let (target, label) = if neg == 0 {
                (context, 1.0f32)
            } else {
                (self.sample_negative(rng), 0.0f32)
            };
            if neg > 0 && target == context {
                continue; // collided with the positive: skip
            }
            let dot: f32 = (0..dim)
                .map(|d| self.input.get(center, d) * self.output.get(target, d))
                .sum();
            let sig = 1.0 / (1.0 + (-dot).exp());
            loss += if label > 0.5 {
                -(sig.max(1e-7)).ln()
            } else {
                -((1.0 - sig).max(1e-7)).ln()
            };
            let g = (sig - label) * lr;
            for d in 0..dim {
                let out = self.output.get(target, d);
                grad_center[d] += g * out;
                self.output
                    .set(target, d, out - g * self.input.get(center, d));
            }
        }
        for d in 0..dim {
            let v = self.input.get(center, d) - grad_center[d];
            self.input.set(center, d, v);
        }
        loss
    }

    fn sample_negative<R: Rng>(&self, rng: &mut R) -> usize {
        let total = *self.cdf.last().expect("non-empty vocab");
        let x = rng.gen_range(0.0..total);
        self.cdf
            .partition_point(|&c| c <= x)
            .min(self.cdf.len() - 1)
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.cfg.dim
    }

    /// Number of word vectors (the vocabulary size the table was trained
    /// over) — lets loaders validate a snapshot against its vocabulary.
    pub fn vocab_size(&self) -> usize {
        self.input.rows()
    }

    /// The vector of word id `id` (a `1 x dim` row).
    pub fn vector(&self, id: usize) -> &[f32] {
        self.input.row(id)
    }

    /// Encodes an id sequence into a `T x dim` matrix of word vectors —
    /// the `X = (x_1, ..., x_T)` of §4.2.
    pub fn embed_sequence(&self, ids: &[usize]) -> Matrix {
        Matrix::from_fn(ids.len(), self.cfg.dim, |r, c| self.input.get(ids[r], c))
    }

    /// Cosine similarity of two word ids.
    pub fn cosine(&self, a: usize, b: usize) -> f32 {
        let (va, vb) = (self.input.row(a), self.input.row(b));
        let dot: f32 = va.iter().zip(vb).map(|(&x, &y)| x * y).sum();
        let na: f32 = va.iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = vb.iter().map(|x| x * x).sum::<f32>().sqrt();
        if na < 1e-9 || nb < 1e-9 {
            0.0
        } else {
            dot / (na * nb)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Builds a tiny corpus where words co-occur in two disjoint "topics".
    fn topic_corpus() -> (Vocab, Vec<Vec<usize>>) {
        let topic_a = ["pizza", "pasta", "espresso", "trattoria"];
        let topic_b = ["slots", "poker", "casino", "jackpot"];
        let mut docs: Vec<Vec<String>> = Vec::new();
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..400 {
            let topic: &[&str] = if i % 2 == 0 { &topic_a } else { &topic_b };
            let doc: Vec<String> = (0..8)
                .map(|_| topic[rng.gen_range(0..topic.len())].to_string())
                .collect();
            docs.push(doc);
        }
        let vocab = Vocab::build(docs.iter().map(|d| d.as_slice()), 2);
        let encoded = docs.iter().map(|d| vocab.encode(d)).collect();
        (vocab, encoded)
    }

    #[test]
    fn training_reduces_loss() {
        let (vocab, docs) = topic_corpus();
        let mut rng = StdRng::seed_from_u64(2);
        let mut sg = SkipGram::new(
            &vocab,
            SkipGramConfig {
                dim: 16,
                epochs: 1,
                ..SkipGramConfig::default()
            },
            &mut rng,
        );
        let first = sg.train(&docs, &mut rng);
        let later = sg.train(&docs, &mut rng);
        assert!(later < first, "first = {first}, later = {later}");
    }

    #[test]
    fn same_topic_words_end_up_closer() {
        let (vocab, docs) = topic_corpus();
        let mut rng = StdRng::seed_from_u64(3);
        let mut sg = SkipGram::new(
            &vocab,
            SkipGramConfig {
                dim: 16,
                epochs: 5,
                ..SkipGramConfig::default()
            },
            &mut rng,
        );
        sg.train(&docs, &mut rng);
        let within = sg.cosine(vocab.id("pizza"), vocab.id("pasta"));
        let across = sg.cosine(vocab.id("pizza"), vocab.id("poker"));
        assert!(
            within > across + 0.2,
            "within = {within}, across = {across}"
        );
    }

    #[test]
    fn embed_sequence_shape_and_content() {
        let (vocab, _) = topic_corpus();
        let mut rng = StdRng::seed_from_u64(4);
        let sg = SkipGram::new(&vocab, SkipGramConfig::default(), &mut rng);
        let ids = vec![vocab.id("pizza"), vocab.id("casino")];
        let m = sg.embed_sequence(&ids);
        assert_eq!(m.shape(), (2, sg.dim()));
        assert_eq!(m.row(0), sg.vector(ids[0]));
        assert_eq!(m.row(1), sg.vector(ids[1]));
    }

    #[test]
    fn negative_sampling_covers_vocab() {
        let (vocab, _) = topic_corpus();
        let mut rng = StdRng::seed_from_u64(5);
        let sg = SkipGram::new(&vocab, SkipGramConfig::default(), &mut rng);
        let mut seen = vec![false; vocab.len()];
        for _ in 0..5_000 {
            seen[sg.sample_negative(&mut rng)] = true;
        }
        let covered = seen.iter().filter(|&&s| s).count();
        assert!(
            covered >= vocab.len() - 1,
            "covered {covered}/{}",
            vocab.len()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (vocab, docs) = topic_corpus();
        let run = || {
            let mut rng = StdRng::seed_from_u64(9);
            let mut sg = SkipGram::new(
                &vocab,
                SkipGramConfig {
                    dim: 8,
                    epochs: 1,
                    ..SkipGramConfig::default()
                },
                &mut rng,
            );
            sg.train(&docs, &mut rng);
            sg.vector(1).to_vec()
        };
        assert_eq!(run(), run());
    }
}
