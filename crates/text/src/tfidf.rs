//! TF-IDF document vectors and cosine similarity.
//!
//! The TG-TI-C baseline (\[22\] in the paper) geolocalizes a tweet by
//! comparing its content against a corpus of geo-tagged tweets; content
//! similarity is computed here as cosine over TF-IDF-weighted sparse
//! vectors.

use std::collections::HashMap;

/// A TF-IDF model fit on a reference corpus of tokenized documents.
#[derive(Debug, Clone)]
pub struct TfIdf {
    /// idf per term, computed as `ln(1 + N / (1 + df))` (smoothed).
    idf: HashMap<String, f32>,
    n_docs: usize,
}

/// A sparse TF-IDF vector: `term -> weight`, pre-normalized to unit ℓ2.
pub type SparseVec = HashMap<String, f32>;

impl TfIdf {
    /// Fits document frequencies on `docs`.
    pub fn fit<'a>(docs: impl IntoIterator<Item = &'a [String]>) -> Self {
        let mut df: HashMap<String, u32> = HashMap::new();
        let mut n_docs = 0usize;
        for doc in docs {
            n_docs += 1;
            let mut seen: Vec<&String> = doc.iter().collect();
            seen.sort_unstable();
            seen.dedup();
            for term in seen {
                *df.entry(term.clone()).or_insert(0) += 1;
            }
        }
        let idf = df
            .into_iter()
            .map(|(t, d)| {
                let w = (1.0 + n_docs as f32 / (1.0 + d as f32)).ln();
                (t, w)
            })
            .collect();
        Self { idf, n_docs }
    }

    /// Number of fitted documents.
    pub fn n_docs(&self) -> usize {
        self.n_docs
    }

    /// Transforms a token stream into a unit-norm sparse TF-IDF vector.
    /// Unseen terms get the maximum idf (they are maximally surprising).
    pub fn transform(&self, tokens: &[String]) -> SparseVec {
        let default_idf = (1.0 + self.n_docs as f32).ln();
        let mut tf: HashMap<&String, f32> = HashMap::new();
        for t in tokens {
            *tf.entry(t).or_insert(0.0) += 1.0;
        }
        let mut vec: SparseVec = tf
            .into_iter()
            .map(|(t, f)| {
                let idf = self.idf.get(t).copied().unwrap_or(default_idf);
                (t.clone(), f * idf)
            })
            .collect();
        let norm: f32 = vec.values().map(|w| w * w).sum::<f32>().sqrt();
        if norm > 1e-12 {
            for w in vec.values_mut() {
                *w /= norm;
            }
        }
        vec
    }

    /// Cosine similarity of two transformed vectors (both unit-norm, so
    /// this is just the sparse dot product).
    pub fn cosine(a: &SparseVec, b: &SparseVec) -> f32 {
        let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
        small
            .iter()
            .filter_map(|(t, &wa)| large.get(t).map(|&wb| wa * wb))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn identical_docs_have_cosine_one() {
        let corpus = [toks(&["a", "b", "c"]), toks(&["d", "e"])];
        let model = TfIdf::fit(corpus.iter().map(|d| d.as_slice()));
        let v = model.transform(&toks(&["a", "b"]));
        assert!((TfIdf::cosine(&v, &v) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn disjoint_docs_have_cosine_zero() {
        let corpus = [toks(&["a", "b"]), toks(&["c", "d"])];
        let model = TfIdf::fit(corpus.iter().map(|d| d.as_slice()));
        let va = model.transform(&toks(&["a", "b"]));
        let vc = model.transform(&toks(&["c", "d"]));
        assert_eq!(TfIdf::cosine(&va, &vc), 0.0);
    }

    #[test]
    fn rare_terms_weigh_more() {
        // "common" appears in every doc, "rare" in one.
        let corpus = [
            toks(&["common", "rare"]),
            toks(&["common", "x"]),
            toks(&["common", "y"]),
            toks(&["common", "z"]),
        ];
        let model = TfIdf::fit(corpus.iter().map(|d| d.as_slice()));
        let v = model.transform(&toks(&["common", "rare"]));
        assert!(v["rare"] > v["common"]);
    }

    #[test]
    fn shared_rare_term_dominates_similarity() {
        let corpus = [
            toks(&["the", "statue", "liberty"]),
            toks(&["the", "park"]),
            toks(&["the", "deli"]),
            toks(&["the", "subway"]),
        ];
        let model = TfIdf::fit(corpus.iter().map(|d| d.as_slice()));
        let q = model.transform(&toks(&["the", "statue"]));
        let d1 = model.transform(&toks(&["the", "statue", "liberty"]));
        let d2 = model.transform(&toks(&["the", "park"]));
        assert!(TfIdf::cosine(&q, &d1) > TfIdf::cosine(&q, &d2));
    }

    #[test]
    fn empty_doc_is_zero_vector() {
        let corpus = [toks(&["a"])];
        let model = TfIdf::fit(corpus.iter().map(|d| d.as_slice()));
        let v = model.transform(&[]);
        assert!(v.is_empty());
        let w = model.transform(&toks(&["a"]));
        assert_eq!(TfIdf::cosine(&v, &w), 0.0);
    }
}
