//! N-gram extraction for the N-Gram-Gauss baseline (\[18\] in the paper).

/// Returns all contiguous `n`-grams (space-joined) for `1 <= n <= max_n`.
///
/// The N-Gram-Gauss baseline fits a Gaussian per geo-specific n-gram;
/// following \[18\] we use unigrams and bigrams by default.
pub fn ngrams(tokens: &[String], max_n: usize) -> Vec<String> {
    assert!(max_n >= 1);
    let mut out = Vec::new();
    for n in 1..=max_n {
        if tokens.len() < n {
            break;
        }
        for w in tokens.windows(n) {
            out.push(w.join(" "));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unigrams_only() {
        assert_eq!(ngrams(&toks(&["a", "b"]), 1), vec!["a", "b"]);
    }

    #[test]
    fn bigrams_included() {
        assert_eq!(
            ngrams(&toks(&["statue", "of", "liberty"]), 2),
            vec!["statue", "of", "liberty", "statue of", "of liberty"]
        );
    }

    #[test]
    fn trigram_count() {
        let g = ngrams(&toks(&["a", "b", "c", "d"]), 3);
        // 4 + 3 + 2
        assert_eq!(g.len(), 9);
        assert!(g.contains(&"b c d".to_string()));
    }

    #[test]
    fn short_input_degrades_gracefully() {
        assert_eq!(ngrams(&toks(&["solo"]), 3), vec!["solo"]);
        assert!(ngrams(&[], 2).is_empty());
    }
}
