#![warn(missing_docs)]

//! Text substrate for the HisRect reproduction.
//!
//! The paper preprocesses tweet contents by replacing every stopword with a
//! `</s>` symbol, keeps only words appearing more than 10 times, trains
//! skip-gram word vectors over all timeline contents (§4.2, §6.1.2), and —
//! for the TG-TI-C and N-Gram-Gauss baselines — needs TF-IDF similarity
//! and n-gram extraction. All of that lives here:
//!
//! - [`tokenize`] / [`preprocess`] — tokenizer and stopword replacement.
//! - [`Vocab`] — frequency-thresholded vocabulary with the `</s>` symbol.
//! - [`SkipGram`] — skip-gram with negative sampling, from scratch.
//! - [`ngrams`] — n-gram extraction for the Gaussian baseline.
//! - [`TfIdf`] — document vectors and cosine similarity for TG-TI-C.

pub mod ngram;
pub mod skipgram;
pub mod tfidf;
pub mod tokenizer;
pub mod vocab;

pub use ngram::ngrams;
pub use skipgram::{SkipGram, SkipGramConfig};
pub use tfidf::{SparseVec, TfIdf};
pub use tokenizer::{preprocess, tokenize, STOPWORDS, UNK_SYMBOL};
pub use vocab::Vocab;
