//! Tokenization and stopword handling (§6.1.2).

/// The symbol the paper substitutes for stopwords and that we also use for
/// out-of-vocabulary words.
pub const UNK_SYMBOL: &str = "</s>";

/// A compact English stopword list (the paper points at ranks.nl's list;
/// this is the same short variant commonly distributed from there).
pub const STOPWORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "am",
    "an",
    "and",
    "any",
    "are",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "could",
    "did",
    "do",
    "does",
    "doing",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "has",
    "have",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "i",
    "if",
    "in",
    "into",
    "is",
    "it",
    "its",
    "itself",
    "just",
    "me",
    "more",
    "most",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "now",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "same",
    "she",
    "should",
    "so",
    "some",
    "such",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "very",
    "was",
    "we",
    "were",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "will",
    "with",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
];

fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

/// Splits raw tweet text into lowercase word tokens. Twitter text is noisy
/// (§1), so the rule is deliberately simple: alphanumeric runs (plus `#`
/// and `@` prefixes kept attached, as hashtags/mentions carry location
/// signal) separated by anything else.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch == '#' || ch == '@' {
            // Hashtags/mentions start a fresh token even mid-run.
            if !current.is_empty() {
                tokens.push(std::mem::take(&mut current));
            }
            current.push(ch);
        } else if ch.is_alphanumeric() || ch == '_' {
            current.extend(ch.to_lowercase());
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Tokenizes and replaces every stopword with [`UNK_SYMBOL`], exactly the
/// preprocessing of §6.1.2.
pub fn preprocess(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .map(|t| {
            if is_stopword(&t) {
                UNK_SYMBOL.to_string()
            } else {
                t
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopword_list_is_sorted_for_binary_search() {
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, STOPWORDS, "STOPWORDS must stay sorted");
    }

    #[test]
    fn tokenize_basic() {
        assert_eq!(
            tokenize("Eating a sandwich in Glasgow!"),
            vec!["eating", "a", "sandwich", "in", "glasgow"]
        );
    }

    #[test]
    fn tokenize_keeps_hashtags_and_mentions() {
        assert_eq!(
            tokenize("at #TimesSquare with @bob"),
            vec!["at", "#timessquare", "with", "@bob"]
        );
    }

    #[test]
    fn tokenize_splits_on_punctuation_and_unicode() {
        assert_eq!(
            tokenize("one,two;three—four"),
            vec!["one", "two", "three", "four"]
        );
        assert_eq!(tokenize("café au lait"), vec!["café", "au", "lait"]);
    }

    #[test]
    fn tokenize_empty_and_whitespace() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n ").is_empty());
    }

    #[test]
    fn preprocess_replaces_stopwords() {
        let toks = preprocess("I am at the Statue of Liberty");
        assert_eq!(
            toks,
            vec![UNK_SYMBOL, UNK_SYMBOL, UNK_SYMBOL, UNK_SYMBOL, "statue", UNK_SYMBOL, "liberty"]
        );
    }

    #[test]
    fn hash_prefix_only_at_token_start() {
        assert_eq!(tokenize("mid#tag"), vec!["mid", "#tag"]);
    }
}
