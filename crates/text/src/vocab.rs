//! Frequency-thresholded vocabulary.

use crate::tokenizer::UNK_SYMBOL;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A word ↔ id mapping built from corpus frequencies.
///
/// Per §6.1.2, only words appearing strictly more than `min_count` times
/// are kept (the paper uses 10); everything else maps to the `</s>` symbol,
/// which always holds id 0.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vocab {
    words: Vec<String>,
    index: HashMap<String, usize>,
    counts: Vec<u64>,
}

impl Vocab {
    /// Builds a vocabulary from token streams.
    pub fn build<'a>(docs: impl IntoIterator<Item = &'a [String]>, min_count: u64) -> Self {
        let mut freq: HashMap<&str, u64> = HashMap::new();
        for doc in docs {
            for tok in doc {
                *freq.entry(tok.as_str()).or_insert(0) += 1;
            }
        }
        let unk_count = freq.remove(UNK_SYMBOL).unwrap_or(0);
        let mut kept: Vec<(&str, u64)> = freq.into_iter().filter(|&(_, c)| c > min_count).collect();
        // Deterministic id assignment: by descending count, ties by word.
        kept.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));

        let mut words = Vec::with_capacity(kept.len() + 1);
        let mut counts = Vec::with_capacity(kept.len() + 1);
        words.push(UNK_SYMBOL.to_string());
        counts.push(unk_count.max(1));
        for (w, c) in kept {
            words.push(w.to_string());
            counts.push(c);
        }
        let index = words
            .iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), i))
            .collect();
        Self {
            words,
            index,
            counts,
        }
    }

    /// Vocabulary size including the `</s>` symbol.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Never true: the `</s>` symbol is always present.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Id for a word; unknown words fall back to the `</s>` id (0).
    pub fn id(&self, word: &str) -> usize {
        self.index.get(word).copied().unwrap_or(0)
    }

    /// True when the word survives the frequency threshold.
    pub fn contains(&self, word: &str) -> bool {
        self.index.contains_key(word)
    }

    /// The word for an id.
    pub fn word(&self, id: usize) -> &str {
        &self.words[id]
    }

    /// Corpus frequency of an id.
    pub fn count(&self, id: usize) -> u64 {
        self.counts[id]
    }

    /// Encodes a token stream to ids (unknowns map to 0).
    pub fn encode(&self, tokens: &[String]) -> Vec<usize> {
        tokens.iter().map(|t| self.id(t)).collect()
    }

    /// Unigram distribution raised to the 3/4 power — the negative-sampling
    /// table of Mikolov et al. (\[53\] in the paper).
    pub fn unigram_weights(&self) -> Vec<f64> {
        self.counts.iter().map(|&c| (c as f64).powf(0.75)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn threshold_filters_rare_words() {
        let a = doc(&["pizza", "pizza", "pizza", "rare"]);
        let b = doc(&["pizza", "tacos", "tacos", "tacos"]);
        let v = Vocab::build([a.as_slice(), b.as_slice()], 2);
        assert!(v.contains("pizza")); // 4 > 2
        assert!(v.contains("tacos")); // 3 > 2
        assert!(!v.contains("rare")); // 1 <= 2
        assert_eq!(v.id("rare"), 0);
        assert_eq!(v.word(0), UNK_SYMBOL);
    }

    #[test]
    fn ids_deterministic_and_frequency_ordered() {
        let a = doc(&["b", "b", "b", "a", "a", "a", "a", "c", "c", "c"]);
        let v1 = Vocab::build([a.as_slice()], 0);
        let v2 = Vocab::build([a.as_slice()], 0);
        assert_eq!(v1.id("a"), 1); // most frequent after UNK
        assert_eq!(v1.id("a"), v2.id("a"));
        assert_eq!(v1.id("b"), v2.id("b"));
        // b and c tie at 3; lexicographic tiebreak puts b first.
        assert_eq!(v1.id("b"), 2);
        assert_eq!(v1.id("c"), 3);
    }

    #[test]
    fn encode_round_trips_known_words() {
        let a = doc(&["x", "x", "y", "y"]);
        let v = Vocab::build([a.as_slice()], 1);
        let ids = v.encode(&doc(&["x", "zzz", "y"]));
        assert_eq!(v.word(ids[0]), "x");
        assert_eq!(ids[1], 0);
        assert_eq!(v.word(ids[2]), "y");
    }

    #[test]
    fn unigram_weights_are_subunit_power() {
        let a = doc(&[
            "w", "w", "w", "w", "w", "w", "w", "w", "w", "w", "w", "w", "w", "w", "w", "w",
        ]);
        let v = Vocab::build([a.as_slice()], 1);
        let w = v.unigram_weights();
        assert_eq!(w.len(), v.len());
        assert!((w[v.id("w")] - (16f64).powf(0.75)).abs() < 1e-9);
    }

    #[test]
    fn unk_counts_tracked() {
        let a = doc(&[UNK_SYMBOL, UNK_SYMBOL, "k", "k"]);
        let v = Vocab::build([a.as_slice()], 1);
        assert_eq!(v.count(0), 2);
    }
}
