//! Kill-and-resume: the ingest loop is crashed mid-stream and restarted
//! from its latest on-disk checkpoint (stream cursor + pipeline state).
//! The resumed run's final profiles and affinity graph must be
//! byte-identical to an uninterrupted run over the same stream — including
//! when the newest checkpoint is corrupt and the loop falls back to the
//! previous one, replaying a longer stream suffix.

use ingest::{latest_valid, save_checkpoint, IngestCheckpoint, IngestConfig, Ingestor};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use twitter_sim::{SimConfig, TweetStream};

const SEED: u64 = 67;
const TOTAL: usize = 700;
const CKPT_EVERY: usize = 120;
const CRASH_AT: usize = 505;

static DIR_ID: AtomicU64 = AtomicU64::new(0);

fn tmp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hisrect-ingest-resume-{}-{}",
        std::process::id(),
        DIR_ID.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn fresh_ingestor(stream: &TweetStream) -> Ingestor {
    Ingestor::new(
        stream.world().clone(),
        stream.friendships().to_vec(),
        stream.config().n_users,
        IngestConfig::default(),
    )
}

/// The uninterrupted reference run: `TOTAL` events, no checkpoints.
fn uninterrupted() -> Ingestor {
    let mut stream = TweetStream::new(SimConfig::tiny(SEED));
    let mut ing = fresh_ingestor(&stream);
    for _ in 0..TOTAL {
        ing.offer(stream.next_event());
    }
    ing.flush();
    ing
}

/// Runs until `CRASH_AT` events with periodic checkpoints, then abandons
/// everything in memory (the "crash") and returns the checkpoint dir.
fn run_until_crash(dir: &Path) {
    let mut stream = TweetStream::new(SimConfig::tiny(SEED));
    let mut ing = fresh_ingestor(&stream);
    let mut ckpt_seq = 0u64;
    for i in 0..CRASH_AT {
        ing.offer(stream.next_event());
        if (i + 1) % CKPT_EVERY == 0 {
            let ck = IngestCheckpoint {
                cursor: stream.cursor(),
                state: ing.state().clone(),
                generation: 0,
                trained_to: 0,
            };
            save_checkpoint(dir, ckpt_seq, &ck).expect("checkpoint write");
            ckpt_seq += 1;
        }
    }
    // Process dies here: `stream` and `ing` are dropped un-flushed.
}

/// Restarts from the latest valid checkpoint in `dir` and streams the
/// remaining events up to `TOTAL`.
fn resume_and_finish(dir: &Path) -> (u64, Ingestor) {
    let (seq, ck) = latest_valid(dir).expect("a valid checkpoint survives the crash");
    let mut stream = TweetStream::resume(SimConfig::tiny(SEED), 0, ck.cursor);
    let mut ing = Ingestor::resume(
        stream.world().clone(),
        stream.friendships().to_vec(),
        IngestConfig::default(),
        ck.state,
    );
    let already = ing.state().applied as usize;
    for _ in already..TOTAL {
        ing.offer(stream.next_event());
    }
    ing.flush();
    (seq, ing)
}

fn fingerprint(ing: &Ingestor) -> String {
    serde_json::to_string(&(ing.profiles(), ing.edges(), ing.state())).expect("fingerprint")
}

#[test]
fn crash_and_resume_is_byte_identical_to_uninterrupted() {
    let reference = uninterrupted();
    let dir = tmp_dir();
    run_until_crash(&dir);
    let (_, resumed) = resume_and_finish(&dir);
    assert_eq!(
        resumed.state().applied as usize,
        TOTAL,
        "resumed run did not reach the full stream length"
    );
    assert_eq!(
        fingerprint(&resumed),
        fingerprint(&reference),
        "resumed profiles/edges/state diverge from the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_latest_checkpoint_falls_back_and_still_converges() {
    let reference = uninterrupted();
    let dir = tmp_dir();
    run_until_crash(&dir);
    // Sabotage the newest checkpoint: the crash tore its tail off.
    let (newest, _) = latest_valid(&dir).expect("checkpoints exist");
    let path = dir.join(format!("ingest_{newest:08}.ckpt"));
    let raw = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &raw[..raw.len() / 3]).unwrap();

    let (picked, resumed) = resume_and_finish(&dir);
    assert!(
        picked < newest,
        "loader must fall back past the corrupt newest checkpoint"
    );
    assert_eq!(
        fingerprint(&resumed),
        fingerprint(&reference),
        "fallback resume diverges from the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
