//! Golden replay determinism: a finite recorded stream pushed through the
//! streaming [`Ingestor`] must reproduce the batch pipeline bit-for-bit
//! on the same events —
//!
//! - profiles identical to [`twitter_sim::assemble`] (§6.1.1 protocol);
//! - every windowed affinity edge identical to [`hisrect::affinity::affinity`]
//!   (§4.4 case analysis) evaluated on the batch dataset;
//!
//! and the whole comparison must hold at `HISRECT_THREADS=1` and `=4`,
//! since day generation fans out across [`parallel`] workers.
//!
//! `parallel::set_threads` is process-global, so the sweep lives in one
//! `#[test]`.

use std::collections::BTreeMap;

use hisrect::affinity::affinity;
use hisrect::HisRectConfig;
use ingest::{IngestConfig, Ingestor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use twitter_sim::stream::StreamEvent;
use twitter_sim::types::Pair;
use twitter_sim::{assemble, AssembleParams, Dataset, SimConfig, Timeline, TweetStream};

const N_EVENTS: usize = 900;
const SEED: u64 = 61;

/// Streams `N_EVENTS`, replays them through the ingestor, and returns the
/// ingestor plus the batch dataset assembled from the same events.
fn replay() -> (Ingestor, Dataset) {
    let mut stream = TweetStream::new(SimConfig::tiny(SEED));
    let events: Vec<StreamEvent> = (0..N_EVENTS).map(|_| stream.next_event()).collect();

    let mut ing = Ingestor::new(
        stream.world().clone(),
        stream.friendships().to_vec(),
        stream.config().n_users,
        IngestConfig::default(),
    );
    for ev in &events {
        ing.offer(ev.clone());
    }
    ing.flush();

    // Batch comparator: the same events regrouped into uid-ascending
    // timelines (the per-uid subsequence of a seq-ordered stream is
    // timestamp-ordered, which is what `assemble` expects).
    let n_users = stream.config().n_users;
    let mut timelines: Vec<Timeline> = (0..n_users)
        .map(|uid| Timeline {
            uid: uid as u32,
            tweets: Vec::new(),
        })
        .collect();
    for ev in &events {
        timelines[ev.uid as usize].tweets.push(ev.tweet.clone());
    }
    timelines.retain(|tl| !tl.tweets.is_empty());
    let params = AssembleParams {
        name: "golden-replay".into(),
        delta_t: ing.config().delta_t,
        ..AssembleParams::default()
    };
    let mut rng = StdRng::seed_from_u64(SEED);
    let ds = assemble(
        stream.world().clone(),
        timelines,
        stream.friendships().to_vec(),
        &params,
        &mut rng,
    );
    (ing, ds)
}

/// Batch affinity over every cross-user profile pair within Δt, keyed by
/// unordered profile index; value is the bit-exact weight.
fn batch_edges(
    ds: &Dataset,
    cfg: &HisRectConfig,
    delta_t: i64,
) -> BTreeMap<(usize, usize), (u32, bool)> {
    let mut out = BTreeMap::new();
    for x in 0..ds.profiles.len() {
        for y in (x + 1)..ds.profiles.len() {
            let (px, py) = (&ds.profiles[x], &ds.profiles[y]);
            if px.uid == py.uid || (px.ts - py.ts).abs() >= delta_t {
                continue;
            }
            let co_label = match (px.pid, py.pid) {
                (Some(a), Some(b)) => Some(a == b),
                _ => None,
            };
            if let Some(w) = affinity(
                ds,
                cfg,
                &Pair {
                    i: x,
                    j: y,
                    co_label,
                },
            ) {
                out.insert((x, y), (w.a.to_bits(), w.labeled_positive));
            }
        }
    }
    out
}

/// One full stream-vs-batch comparison at the current thread count.
/// Returns a serialized fingerprint of the streaming outputs.
fn compare_once() -> String {
    let (ing, ds) = replay();

    // 1. Profiles: bit-identical, in identical order.
    let stream_profiles = ing.profiles();
    assert_eq!(
        stream_profiles.len(),
        ds.profiles.len(),
        "profile counts diverge"
    );
    assert_eq!(stream_profiles, ds.profiles, "profiles diverge from batch");

    // 2. Edges: map each streaming PKey to its batch profile index.
    //    Batch profiles are laid out kept-uid-ascending, ordinal within.
    let mut base = BTreeMap::new(); // uid -> first batch index
    for (idx, p) in ds.profiles.iter().enumerate() {
        base.entry(p.uid).or_insert(idx);
    }
    let cfg = HisRectConfig {
        rho_m: ing.config().rho_m,
        eps_d2_m: ing.config().eps_d2_m,
        social_w: ing.config().social_w,
        ..HisRectConfig::default()
    };
    let want = batch_edges(&ds, &cfg, ing.config().delta_t);
    let mut got = BTreeMap::new();
    for e in ing.edges() {
        let xi = base[&e.i.uid] + e.i.k as usize;
        let yj = base[&e.j.uid] + e.j.k as usize;
        let key = (xi.min(yj), xi.max(yj));
        let prev = got.insert(key, (e.a.to_bits(), e.labeled_positive));
        assert!(prev.is_none(), "duplicate streaming edge for {key:?}");
    }
    assert_eq!(
        got, want,
        "streaming affinity graph diverges from batch §4.4 weights"
    );
    assert!(
        !got.is_empty(),
        "replay produced no edges — test is vacuous"
    );

    serde_json::to_string(&(stream_profiles, ing.edges())).expect("fingerprint")
}

#[test]
fn streaming_replay_matches_batch_at_1_and_4_threads() {
    let prev = parallel::num_threads();
    parallel::set_threads(1);
    let fp1 = compare_once();
    parallel::set_threads(4);
    let fp4 = compare_once();
    parallel::set_threads(prev);
    assert_eq!(fp1, fp4, "streaming outputs depend on HISRECT_THREADS");
}
