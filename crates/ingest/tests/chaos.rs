//! Ingest chaos: `reorder@n` / `gap@n` / `dup@n` stream faults (armed via
//! [`faultsim`]) driven straight into the [`Ingestor`]. Required
//! behavior: zero panics, no duplicate profile updates, typed counters
//! that account for every lost or re-delivered event, and — since the
//! reorder buffer re-sequences deliveries — a final state identical to a
//! clean in-order ingest of exactly the delivered sequence numbers.
//!
//! The fault plan is process-global, so every test serializes on [`LOCK`].

use std::collections::BTreeSet;
use std::sync::Mutex;

use ingest::{IngestConfig, Ingestor};
use twitter_sim::stream::StreamEvent;
use twitter_sim::{SimConfig, TweetStream};

const SEED: u64 = 71;
const DELIVERIES: usize = 600;

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn cfg() -> IngestConfig {
    IngestConfig {
        gap_slack: 8,
        ..IngestConfig::default()
    }
}

fn fresh_ingestor(stream: &TweetStream) -> Ingestor {
    Ingestor::new(
        stream.world().clone(),
        stream.friendships().to_vec(),
        stream.config().n_users,
        cfg(),
    )
}

/// Streams `DELIVERIES` events under `plan` and returns both the faulted
/// ingestor and the raw delivery log.
fn faulted_run(plan: &str) -> (Ingestor, Vec<StreamEvent>) {
    faultsim::clear();
    faultsim::configure_str(plan).expect("valid fault plan");
    let mut stream = TweetStream::new(SimConfig::tiny(SEED));
    let mut ing = fresh_ingestor(&stream);
    let mut delivered = Vec::with_capacity(DELIVERIES);
    for _ in 0..DELIVERIES {
        let ev = stream.next_event();
        delivered.push(ev.clone());
        ing.offer(ev);
    }
    ing.flush();
    faultsim::clear();
    (ing, delivered)
}

/// Clean comparator: the clean stream's events restricted to `seqs`,
/// offered strictly in sequence order.
fn ordered_replay_of(seqs: &BTreeSet<u64>) -> Ingestor {
    let max = *seqs.iter().next_back().expect("non-empty delivery") as usize;
    let mut stream = TweetStream::new(SimConfig::tiny(SEED));
    let clean: Vec<StreamEvent> = (0..=max).map(|_| stream.next_event()).collect();
    let mut ing = fresh_ingestor(&stream);
    for ev in clean {
        if seqs.contains(&ev.seq) {
            ing.offer(ev);
        }
    }
    ing.flush();
    ing
}

/// Asserts the faulted run converged to the clean in-order ingest of the
/// same sequence numbers — the "no duplicate profile updates, clean
/// recovery" contract. Only the `dups` counter may differ (the clean
/// replay never sees the re-delivery).
fn assert_converged(faulted: &Ingestor, delivered: &[StreamEvent]) {
    let unique: BTreeSet<u64> = delivered.iter().map(|e| e.seq).collect();
    let reference = ordered_replay_of(&unique);
    let mut got = faulted.state().clone();
    got.dups = reference.state().dups;
    assert_eq!(
        &got,
        reference.state(),
        "faulted ingest state diverges from clean in-order replay"
    );
    let (applied, dups, _) = faulted.delivery_stats();
    assert_eq!(
        applied as usize,
        unique.len(),
        "applied != unique deliveries"
    );
    assert_eq!(
        dups as usize,
        delivered.len() - unique.len(),
        "dup counter misses re-deliveries"
    );
}

#[test]
fn dup_fault_causes_no_duplicate_profile_updates() {
    let _g = lock();
    let (ing, delivered) = faulted_run("dup@120");
    assert_eq!(delivered.len() as u64 - 1, ing.state().applied);
    assert_converged(&ing, &delivered);
}

#[test]
fn reorder_fault_is_resequenced() {
    let _g = lock();
    let (ing, delivered) = faulted_run("reorder@260");
    // The swap really happened at the delivery boundary...
    assert!(
        delivered.windows(2).any(|w| w[0].seq > w[1].seq),
        "reorder fault never fired"
    );
    // ...and the buffer absorbed it without counting dups or gaps.
    let (_, dups, gaps) = ing.delivery_stats();
    assert_eq!((dups, gaps), (0, 0));
    assert_converged(&ing, &delivered);
}

#[test]
fn gap_fault_is_declared_and_skipped() {
    let _g = lock();
    let (ing, delivered) = faulted_run("gap@150");
    let unique: BTreeSet<u64> = delivered.iter().map(|e| e.seq).collect();
    let max = *unique.iter().next_back().unwrap();
    assert_eq!(
        unique.len() as u64,
        max, // one seq in 0..=max is missing
        "gap fault never dropped an event"
    );
    let (_, _, gaps) = ing.delivery_stats();
    assert_eq!(gaps, 1, "exactly one event was lost to the gap");
    assert_converged(&ing, &delivered);
}

#[test]
fn combined_fault_plan_recovers_cleanly() {
    let _g = lock();
    let (ing, delivered) = faulted_run("reorder@50,gap@170,dup@300");
    let (_, dups, gaps) = ing.delivery_stats();
    assert_eq!((dups, gaps), (1, 1));
    assert_converged(&ing, &delivered);
    // Profiles stay internally consistent under chaos.
    let geo = delivered
        .iter()
        .map(|e| e.seq)
        .collect::<BTreeSet<_>>()
        .len();
    assert!(ing.n_profiles() > 0 && ing.n_profiles() <= geo);
    for p in ing.profiles() {
        for v in &p.visits {
            assert!(v.ts < p.ts, "visit history leaked past its profile");
        }
    }
}
