//! Incremental ANN candidate index over materialized profiles.
//!
//! [`CandidateMirror`] shadows an [`Ingestor`]: each `sync` embeds every
//! newly materialized kept-user profile with the *current model
//! generation* and appends it to an [`AnnIndex`] through the incremental
//! [`AnnIndex::insert`] fast path (ids are assigned in insertion order,
//! so no rebuilds happen during steady-state streaming). Profiles that
//! fall out of the retention window are tombstoned via
//! [`AnnIndex::evict_older_than`].
//!
//! Embeddings are a function of the model, so a `/reload` invalidates
//! every cached vector: [`CandidateMirror::invalidate`] rebuilds the
//! index under the new embedder and bumps the
//! `ingest/ann_invalidations` counter — the cache-invalidation signal
//! the observability satellite asks for.

use crate::pipeline::{Ingestor, PKey};
use ann::{AnnConfig, AnnIndex, AnnItem};
use twitter_sim::Profile;

/// Incrementally maintained ANN index mirroring an [`Ingestor`].
pub struct CandidateMirror {
    cfg: AnnConfig,
    bounds: (f64, f64, f64, f64),
    index: AnnIndex,
    /// ANN id → profile key, in insertion order.
    ids: Vec<PKey>,
    /// Per-uid count of profiles already inserted.
    done: Vec<u32>,
}

impl CandidateMirror {
    /// Creates an empty mirror for `n_users` users over fixed geographic
    /// `bounds` (min_lat, min_lon, max_lat, max_lon). Fixed bounds keep
    /// the streaming grid identical to a batch-built one.
    pub fn new(cfg: AnnConfig, bounds: (f64, f64, f64, f64), n_users: usize) -> Self {
        Self {
            index: AnnIndex::new_empty(cfg.clone(), bounds),
            cfg,
            bounds,
            ids: Vec::new(),
            done: vec![0; n_users],
        }
    }

    /// Geographic bounds covering every POI of `world`, padded so
    /// near-POI and near-home tweets stay inside the grid.
    pub fn bounds_for(world: &twitter_sim::World, pad_deg: f64) -> (f64, f64, f64, f64) {
        let mut b = (
            f64::INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NEG_INFINITY,
        );
        for poi in world.pois.pois() {
            let c = poi.center();
            b.0 = b.0.min(c.lat);
            b.1 = b.1.min(c.lon);
            b.2 = b.2.max(c.lat);
            b.3 = b.3.max(c.lon);
        }
        (b.0 - pad_deg, b.1 - pad_deg, b.2 + pad_deg, b.3 + pad_deg)
    }

    /// Inserts every not-yet-indexed profile of kept users and evicts
    /// items older than `cutoff_ts` (pass `i64::MIN` to keep all).
    /// Returns how many profiles were inserted.
    pub fn sync(
        &mut self,
        ing: &Ingestor,
        cutoff_ts: i64,
        embed: impl Fn(&Profile) -> Vec<f32>,
    ) -> usize {
        let mut inserted = 0usize;
        // Deterministic uid sweep: kept users' backlogs append in uid
        // order, which keeps ids ascending and the insert fast path hot.
        for uid in 0..self.done.len() {
            let user = &ing.state().users[uid];
            if !user.kept {
                continue;
            }
            while (self.done[uid] as usize) < user.profiles.len() {
                let k = self.done[uid];
                let p = &user.profiles[k as usize];
                let id = self.ids.len() as u32;
                let item = AnnItem {
                    id,
                    point: p.geo,
                    ts: p.ts,
                    embedding: embed(p),
                };
                let fresh = self.index.insert(item);
                debug_assert!(fresh, "ann ids are assigned uniquely");
                self.ids.push(PKey { uid: uid as u32, k });
                self.done[uid] = k + 1;
                inserted += 1;
            }
        }
        if cutoff_ts > i64::MIN {
            self.index.evict_older_than(cutoff_ts);
        }
        obs::add("ingest/ann_inserted", inserted as u64);
        inserted
    }

    /// Rebuilds the index from scratch under a new embedder — required
    /// after a model reload, since every cached embedding is stale.
    pub fn invalidate(
        &mut self,
        ing: &Ingestor,
        cutoff_ts: i64,
        embed: impl Fn(&Profile) -> Vec<f32>,
    ) {
        obs::incr("ingest/ann_invalidations");
        self.index = AnnIndex::new_empty(self.cfg.clone(), self.bounds);
        self.ids.clear();
        for d in &mut self.done {
            *d = 0;
        }
        self.sync(ing, cutoff_ts, embed);
    }

    /// The underlying index.
    pub fn index(&self) -> &AnnIndex {
        &self.index
    }

    /// The profile key behind an ANN id.
    pub fn key_of(&self, ann_id: u32) -> Option<PKey> {
        self.ids.get(ann_id as usize).copied()
    }

    /// Items currently live (inserted minus evicted).
    pub fn live_len(&self) -> usize {
        self.index.live_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::IngestConfig;
    use twitter_sim::{SimConfig, TweetStream};

    fn geo_embed(p: &Profile) -> Vec<f32> {
        vec![(p.geo.lat * 100.0) as f32, (p.geo.lon * 100.0) as f32]
    }

    fn ann_cfg() -> AnnConfig {
        AnnConfig {
            cell_deg: 0.01,
            exact_threshold: 4,
            graph_degree: 4,
            beam_width: 32,
            delta_t: None,
            seed: 7,
        }
    }

    #[test]
    fn sync_tracks_kept_profiles_incrementally() {
        let mut stream = TweetStream::new(SimConfig::tiny(23));
        let mut ing = Ingestor::new(
            stream.world().clone(),
            stream.friendships().to_vec(),
            stream.config().n_users,
            IngestConfig::default(),
        );
        let bounds = CandidateMirror::bounds_for(ing.world(), 0.05);
        let mut mirror = CandidateMirror::new(ann_cfg(), bounds, stream.config().n_users);
        let mut total = 0usize;
        for _ in 0..3 {
            for _ in 0..150 {
                ing.offer(stream.next_event());
            }
            ing.flush();
            total += mirror.sync(&ing, i64::MIN, geo_embed);
        }
        assert!(total > 0);
        assert_eq!(mirror.live_len(), total);
        // Every indexed id maps back to a kept user's profile.
        for id in 0..total as u32 {
            let key = mirror.key_of(id).expect("id mapped");
            assert!(ing.state().users[key.uid as usize].kept);
        }
        // Re-sync with nothing new is a no-op.
        assert_eq!(mirror.sync(&ing, i64::MIN, geo_embed), 0);
    }

    #[test]
    fn eviction_and_invalidation() {
        let mut stream = TweetStream::new(SimConfig::tiny(29));
        let mut ing = Ingestor::new(
            stream.world().clone(),
            stream.friendships().to_vec(),
            stream.config().n_users,
            IngestConfig::default(),
        );
        for _ in 0..600 {
            ing.offer(stream.next_event());
        }
        ing.flush();
        let bounds = CandidateMirror::bounds_for(ing.world(), 0.05);
        let mut mirror = CandidateMirror::new(ann_cfg(), bounds, stream.config().n_users);
        let n = mirror.sync(&ing, i64::MIN, geo_embed);
        assert!(n > 0);
        // Evict the first simulated day.
        mirror.sync(&ing, 86_400, geo_embed);
        assert!(mirror.live_len() < n, "old items must tombstone");
        let live_after_evict = mirror.live_len();
        // Invalidation rebuilds under a new embedder at the same cutoff.
        obs::set_enabled(true);
        let before = obs::counter_value("ingest/ann_invalidations");
        mirror.invalidate(&ing, 86_400, |p| {
            vec![(p.geo.lon * 50.0) as f32, (p.geo.lat * 50.0) as f32]
        });
        assert_eq!(obs::counter_value("ingest/ann_invalidations"), before + 1);
        assert_eq!(mirror.live_len(), live_after_evict);
    }
}
