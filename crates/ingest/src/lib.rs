#![warn(missing_docs)]

//! Streaming ingestion and continuous learning.
//!
//! The rest of the workspace is batch: simulate a frozen corpus, train
//! once, serve a frozen model. This crate closes the loop against an
//! unbounded tweet stream ([`twitter_sim::TweetStream`]):
//!
//! ```text
//!  TweetStream ──► Ingestor ──────────────► CandidateMirror (ANN)
//!   (seeded,        │  per-user profiles      incremental insert
//!    resumable,     │  windowed affinity      + windowed eviction
//!    faultable)     │  watermark, counters
//!                   ▼
//!               IngestCheckpoint (cursor + state, HISRECT-CKPT-V1)
//!                   │
//!                   ▼
//!               driver::fine_tune ──► model_gen_N.json ──► POST /reload
//!                   (assemble window, resume ckpt)          (live server)
//! ```
//!
//! Three properties the tests pin down:
//!
//! 1. **Replay determinism** — ingesting a finite recorded stream yields
//!    profiles and affinity edges bit-identical to the batch pipeline
//!    ([`twitter_sim::assemble`] + [`hisrect::affinity`]) on the same
//!    events, at any thread count.
//! 2. **Crash safety** — kill the loop mid-stream, resume from the latest
//!    checkpoint + stream cursor, and the final profiles are byte-identical
//!    to an uninterrupted run.
//! 3. **Fault absorption** — `reorder@n` / `gap@n` / `dup@n` stream faults
//!    are absorbed without panics and without duplicate profile updates.

pub mod ckpt;
pub mod driver;
pub mod mirror;
pub mod pipeline;

pub use ckpt::{latest_valid, save_checkpoint, CkptIoError, IngestCheckpoint};
pub use driver::{fine_tune, publish_reload, record_staleness, DriverConfig, FineTuneOutcome};
pub use mirror::CandidateMirror;
pub use pipeline::{Edge, IngestConfig, Ingestor, IngestorState, PKey};
