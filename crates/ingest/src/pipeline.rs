//! The ingestion pipeline: stream events in, profiles + affinity out.
//!
//! [`Ingestor`] consumes [`StreamEvent`]s in any delivery order and
//! maintains, incrementally and deterministically:
//!
//! - **Per-user HisRect profiles** — every geo-tagged tweet materializes a
//!   [`Profile`] exactly as [`twitter_sim::assemble`] would: the recent
//!   tweet's tokens, its geo-tag, the visit history strictly before it,
//!   and a geometric POI label. The §6.1.1 timeline filter (keep only
//!   users with at least one tweet inside a POI) is applied at snapshot
//!   time, since a user's kept-status flips monotonically.
//! - **The windowed affinity graph** — each new profile is paired against
//!   every retained profile within Δt and weighted by the §4.4 case
//!   analysis (mirroring [`hisrect::affinity`]); edges older than the
//!   retention window are ring-buffer evicted from the front.
//! - **Delivery bookkeeping** — events are applied in sequence-number
//!   order through a reorder buffer: duplicates (same `seq`) are dropped
//!   and counted, holes are tolerated up to `gap_slack` buffered events
//!   before the gap is declared and skipped. This guarantees *no
//!   duplicate profile updates* under `dup@n` faults and in-order
//!   application under `reorder@n` faults.
//!
//! All mutable state lives in the serializable [`IngestorState`], so a
//! checkpoint captures the pipeline exactly and a resumed run is
//! bit-identical to an uninterrupted one.

use serde::{Deserialize, Serialize};
use twitter_sim::stream::StreamEvent;
use twitter_sim::types::Timestamp;
use twitter_sim::{Profile, Timeline, Tweet, Visit, World};

/// Static knobs of the pipeline. The affinity constants default to
/// [`hisrect::HisRectConfig`]'s values so windowed edges match the batch
/// graph bit-for-bit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IngestConfig {
    /// Pairing threshold Δt in seconds (§3.1).
    pub delta_t: i64,
    /// Retention window in seconds for visits, tweets, and affinity
    /// edges; `0` retains everything (needed for batch-replay equality).
    pub window_secs: i64,
    /// Out-of-order events buffered before a hole at the next expected
    /// sequence number is declared a gap and skipped.
    pub gap_slack: usize,
    /// Affinity proximity gate ρ in meters (§4.4).
    pub rho_m: f64,
    /// Affinity distance-decay constant ε_d2 in meters (§4.4).
    pub eps_d2_m: f64,
    /// Friendship bonus on unlabeled edges (§7 extension; 0 disables).
    pub social_w: f32,
}

impl Default for IngestConfig {
    fn default() -> Self {
        Self {
            delta_t: 3600,
            window_secs: 0,
            gap_slack: 64,
            rho_m: 1000.0,
            eps_d2_m: 50.0,
            social_w: 0.0,
        }
    }
}

/// Stable identity of a materialized profile: the user and the ordinal of
/// the profile within that user's history. Survives snapshots, eviction,
/// and resume (unlike a position in a global vector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PKey {
    /// Owning user.
    pub uid: u32,
    /// Ordinal among that user's profiles (0-based, materialization order).
    pub k: u32,
}

/// One affinity edge of the windowed graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Earlier profile of the pair.
    pub i: PKey,
    /// Later profile of the pair (its timestamp orders the ring buffer).
    pub j: PKey,
    /// Timestamp of the later profile; eviction key.
    pub ts: Timestamp,
    /// Affinity weight `a_ij` in `[-1, 1]`.
    pub a: f32,
    /// True when both profiles are labeled with the same POI (`Γ_L⁺`).
    pub labeled_positive: bool,
}

/// Per-user mutable state.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct UserState {
    /// Retained tweets in arrival (= timestamp) order; fine-tune fodder.
    pub tweets: Vec<Tweet>,
    /// Retained visit history (geo-tagged tweets), ascending timestamps.
    pub visits: Vec<Visit>,
    /// Materialized profiles, ordinal order. Never evicted — the profile
    /// *list* is the pipeline's output; only pairing/visits are windowed.
    pub profiles: Vec<Profile>,
    /// True once any tweet landed inside a POI (§6.1.1 timeline filter).
    pub kept: bool,
}

/// The serializable whole of the pipeline's mutable state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IngestorState {
    /// Per-user state, indexed by uid.
    pub users: Vec<UserState>,
    /// Out-of-order events waiting for their predecessors, ascending seq.
    pub pending: Vec<StreamEvent>,
    /// Next sequence number to apply.
    pub expected_seq: u64,
    /// Highest applied timestamp.
    pub watermark: Timestamp,
    /// Profiles inside the Δt pairing horizon, materialization order.
    pub recent: Vec<PKey>,
    /// The windowed affinity graph, ascending `ts` (ring buffer).
    pub edges: Vec<Edge>,
    /// Events applied (post-dedup, post-gap).
    pub applied: u64,
    /// Duplicate deliveries dropped.
    pub dups: u64,
    /// Events lost to declared gaps.
    pub gaps: u64,
    /// Edges evicted from the window so far.
    pub edges_evicted: u64,
}

impl IngestorState {
    fn new(n_users: usize) -> Self {
        Self {
            users: vec![UserState::default(); n_users],
            pending: Vec::new(),
            expected_seq: 0,
            watermark: 0,
            recent: Vec::new(),
            edges: Vec::new(),
            applied: 0,
            dups: 0,
            gaps: 0,
            edges_evicted: 0,
        }
    }
}

/// The ingestion pipeline. Immutable context (world, friendships, config)
/// plus the serializable [`IngestorState`].
pub struct Ingestor {
    cfg: IngestConfig,
    world: World,
    friendships: Vec<(u32, u32)>,
    state: IngestorState,
}

impl Ingestor {
    /// Opens a fresh pipeline over `n_users` users of `world`.
    /// `friendships` must be sorted `(lo, hi)` pairs (as produced by the
    /// generator) — they feed the §7 social affinity bonus.
    pub fn new(
        world: World,
        friendships: Vec<(u32, u32)>,
        n_users: usize,
        cfg: IngestConfig,
    ) -> Self {
        Self {
            cfg,
            world,
            friendships,
            state: IngestorState::new(n_users),
        }
    }

    /// Reopens a pipeline from a checkpointed state.
    pub fn resume(
        world: World,
        friendships: Vec<(u32, u32)>,
        cfg: IngestConfig,
        state: IngestorState,
    ) -> Self {
        Self {
            cfg,
            world,
            friendships,
            state,
        }
    }

    /// The pipeline's serializable state (checkpoint payload).
    pub fn state(&self) -> &IngestorState {
        &self.state
    }

    /// The simulated world the pipeline labels against.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Sorted friendship pairs.
    pub fn friendships(&self) -> &[(u32, u32)] {
        &self.friendships
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &IngestConfig {
        &self.cfg
    }

    /// Highest applied event timestamp — the stream watermark.
    pub fn watermark(&self) -> Timestamp {
        self.state.watermark
    }

    /// Offers one delivered event. Applies it (and any unblocked pending
    /// events) in sequence order; duplicates are dropped.
    pub fn offer(&mut self, ev: StreamEvent) {
        obs::incr("ingest/events_offered");
        if ev.seq < self.state.expected_seq {
            self.state.dups += 1;
            obs::incr("ingest/dups_dropped");
            return;
        }
        match self.state.pending.binary_search_by_key(&ev.seq, |p| p.seq) {
            Ok(_) => {
                self.state.dups += 1;
                obs::incr("ingest/dups_dropped");
                return;
            }
            Err(pos) => self.state.pending.insert(pos, ev),
        }
        self.drain(false);
    }

    /// Applies every pending event, skipping unresolved holes. Call at a
    /// stream boundary (end of a finite replay, or before a checkpoint
    /// that must not carry a reorder buffer).
    pub fn flush(&mut self) {
        self.drain(true);
    }

    fn drain(&mut self, force: bool) {
        loop {
            let Some(first) = self.state.pending.first() else {
                return;
            };
            if first.seq > self.state.expected_seq {
                // Hole at expected_seq. Tolerate it while the buffer is
                // small (a reorder in flight); declare a gap beyond slack.
                if !force && self.state.pending.len() <= self.cfg.gap_slack {
                    return;
                }
                let lost = first.seq - self.state.expected_seq;
                self.state.gaps += lost;
                obs::add("ingest/gap_events", lost);
                self.state.expected_seq = first.seq;
            }
            let ev = self.state.pending.remove(0);
            self.state.expected_seq = ev.seq + 1;
            self.apply(ev);
        }
    }

    /// Applies one in-order event.
    fn apply(&mut self, ev: StreamEvent) {
        let uid = ev.uid as usize;
        assert!(uid < self.state.users.len(), "uid beyond configured users");
        let tweet = ev.tweet;
        self.state.applied += 1;
        if tweet.ts > self.state.watermark {
            self.state.watermark = tweet.ts;
        }
        obs::incr("ingest/events_applied");
        let cutoff =
            (self.cfg.window_secs > 0).then(|| self.state.watermark - self.cfg.window_secs);

        let user = &mut self.state.users[uid];
        if let Some(c) = cutoff {
            let keep_from = user.tweets.partition_point(|t| t.ts < c);
            user.tweets.drain(..keep_from);
            let keep_from = user.visits.partition_point(|v| v.ts < c);
            user.visits.drain(..keep_from);
        }
        user.tweets.push(tweet.clone());

        let Some(geo) = tweet.geo else { return };
        // Materialize the profile exactly as `assemble` does: visit
        // history strictly before this tweet, geometric POI label.
        let pid = self.world.pois.containing(&geo);
        if pid.is_some() {
            user.kept = true;
        }
        let profile = Profile {
            uid: ev.uid,
            ts: tweet.ts,
            tokens: tweet.tokens.clone(),
            geo,
            visits: user.visits.clone(),
            pid,
        };
        user.visits.push(Visit {
            ts: tweet.ts,
            point: geo,
        });
        let key = PKey {
            uid: ev.uid,
            k: user.profiles.len() as u32,
        };
        user.profiles.push(profile);
        obs::incr("ingest/profiles");

        // Pair against every retained profile within Δt (the stream is
        // timestamp-ordered, so the horizon only moves forward).
        let horizon = tweet.ts - self.cfg.delta_t;
        let keep_from = self
            .state
            .recent
            .partition_point(|pk| self.profile(*pk).ts <= horizon);
        self.state.recent.drain(..keep_from);
        let mut new_edges = Vec::new();
        for &pk in &self.state.recent {
            if pk.uid == key.uid {
                continue;
            }
            if let Some(e) = self.edge_weight(pk, key) {
                new_edges.push(e);
            }
        }
        obs::add("ingest/edges", new_edges.len() as u64);
        self.state.edges.extend(new_edges);
        self.state.recent.push(key);

        // Ring-buffer eviction of expired edges.
        if let Some(c) = cutoff {
            let keep_from = self.state.edges.partition_point(|e| e.ts < c);
            if keep_from > 0 {
                self.state.edges_evicted += keep_from as u64;
                obs::add("ingest/edges_evicted", keep_from as u64);
                self.state.edges.drain(..keep_from);
            }
        }
    }

    /// The profile behind a key.
    pub fn profile(&self, key: PKey) -> &Profile {
        &self.state.users[key.uid as usize].profiles[key.k as usize]
    }

    /// Affinity weight of a profile pair per the §4.4 case analysis —
    /// the same math as [`hisrect::affinity::affinity`]; the golden
    /// replay test pins the two implementations to identical outputs.
    fn edge_weight(&self, i: PKey, j: PKey) -> Option<Edge> {
        let (pi, pj) = (self.profile(i), self.profile(j));
        let edge = |a: f32, pos: bool| Edge {
            i,
            j,
            ts: pj.ts.max(pi.ts),
            a,
            labeled_positive: pos,
        };
        match (pi.pid, pj.pid) {
            (Some(x), Some(y)) if x == y => Some(edge(1.0, true)),
            (Some(_), Some(_)) => Some(edge(-1.0, false)),
            _ => {
                let friends = self.cfg.social_w > 0.0 && self.are_friends(pi.uid, pj.uid);
                let d = pi.geo.fast_dist_m(&pj.geo);
                let gate = if friends {
                    2.0 * self.cfg.rho_m
                } else {
                    self.cfg.rho_m
                };
                if d >= gate {
                    return None;
                }
                let pois = &self.world.pois;
                if pois.min_distance_m(&pi.geo) >= gate || pois.min_distance_m(&pj.geo) >= gate {
                    return None;
                }
                let mut a = if d < self.cfg.rho_m {
                    (self.cfg.eps_d2_m / (self.cfg.eps_d2_m + d)) as f32
                } else {
                    0.0
                };
                if friends {
                    a = (a + self.cfg.social_w).min(1.0);
                }
                (a > 0.0).then(|| edge(a, false))
            }
        }
    }

    fn are_friends(&self, a: u32, b: u32) -> bool {
        let pair = (a.min(b), a.max(b));
        a != b && self.friendships.binary_search(&pair).is_ok()
    }

    /// Materialized profiles of kept users, uid-ascending then ordinal —
    /// the exact order [`twitter_sim::assemble`] produces when timelines
    /// are pushed in uid order.
    pub fn profiles(&self) -> Vec<Profile> {
        self.state
            .users
            .iter()
            .filter(|u| u.kept)
            .flat_map(|u| u.profiles.iter().cloned())
            .collect()
    }

    /// Windowed affinity edges among kept users, ring order.
    pub fn edges(&self) -> Vec<Edge> {
        self.state
            .edges
            .iter()
            .filter(|e| {
                self.state.users[e.i.uid as usize].kept && self.state.users[e.j.uid as usize].kept
            })
            .cloned()
            .collect()
    }

    /// Retained timelines of every user with any tweets, uid order — the
    /// fine-tune driver feeds these to [`twitter_sim::assemble`] (which
    /// applies its own timeline filter).
    pub fn timelines(&self) -> Vec<Timeline> {
        self.state
            .users
            .iter()
            .enumerate()
            .filter(|(_, u)| !u.tweets.is_empty())
            .map(|(uid, u)| Timeline {
                uid: uid as u32,
                tweets: u.tweets.clone(),
            })
            .collect()
    }

    /// `(applied, dups_dropped, gap_events)` delivery counters.
    pub fn delivery_stats(&self) -> (u64, u64, u64) {
        (self.state.applied, self.state.dups, self.state.gaps)
    }

    /// Total materialized profiles across all users (kept or not).
    pub fn n_profiles(&self) -> usize {
        self.state.users.iter().map(|u| u.profiles.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twitter_sim::{SimConfig, TweetStream};

    fn tiny_ingest(n_events: usize, cfg: IngestConfig) -> (Ingestor, Vec<StreamEvent>) {
        let mut stream = TweetStream::new(SimConfig::tiny(17));
        let events: Vec<StreamEvent> = (0..n_events).map(|_| stream.next_event()).collect();
        let mut ing = Ingestor::new(
            stream.world().clone(),
            stream.friendships().to_vec(),
            stream.config().n_users,
            cfg,
        );
        for ev in &events {
            ing.offer(ev.clone());
        }
        ing.flush();
        (ing, events)
    }

    #[test]
    fn applies_in_order_and_materializes_profiles() {
        let (ing, events) = tiny_ingest(400, IngestConfig::default());
        let (applied, dups, gaps) = ing.delivery_stats();
        assert_eq!(applied, 400);
        assert_eq!((dups, gaps), (0, 0));
        assert!(ing.n_profiles() > 0);
        let geo_events = events.iter().filter(|e| e.tweet.geo.is_some()).count();
        assert_eq!(ing.n_profiles(), geo_events);
        for p in ing.profiles() {
            for v in &p.visits {
                assert!(v.ts < p.ts, "visits strictly precede the profile");
            }
        }
    }

    #[test]
    fn shuffled_delivery_converges_to_in_order_state() {
        let (in_order, events) = tiny_ingest(300, IngestConfig::default());
        let mut shuffled = events.clone();
        // Deterministic 3-rotation within blocks of 3.
        for chunk in shuffled.chunks_mut(3) {
            chunk.rotate_left(1);
        }
        let stream = TweetStream::new(SimConfig::tiny(17));
        let mut ing = Ingestor::new(
            stream.world().clone(),
            stream.friendships().to_vec(),
            stream.config().n_users,
            IngestConfig::default(),
        );
        for ev in shuffled {
            ing.offer(ev);
        }
        ing.flush();
        assert_eq!(ing.state(), in_order.state());
    }

    #[test]
    fn duplicates_do_not_update_profiles_twice() {
        let (clean, events) = tiny_ingest(300, IngestConfig::default());
        let stream = TweetStream::new(SimConfig::tiny(17));
        let mut ing = Ingestor::new(
            stream.world().clone(),
            stream.friendships().to_vec(),
            stream.config().n_users,
            IngestConfig::default(),
        );
        for ev in &events {
            ing.offer(ev.clone());
            ing.offer(ev.clone()); // immediate redelivery
        }
        // And a late full replay.
        for ev in &events {
            ing.offer(ev.clone());
        }
        ing.flush();
        let (applied, dups, gaps) = ing.delivery_stats();
        assert_eq!(applied, 300);
        assert_eq!(dups, 600);
        assert_eq!(gaps, 0);
        // Identical data; only the dup counter may differ.
        let mut got = ing.state().clone();
        got.dups = clean.state().dups;
        assert_eq!(&got, clean.state());
    }

    #[test]
    fn gaps_are_declared_and_skipped() {
        let (_, events) = tiny_ingest(200, IngestConfig::default());
        let cfg = IngestConfig {
            gap_slack: 4,
            ..IngestConfig::default()
        };
        let stream = TweetStream::new(SimConfig::tiny(17));
        let mut ing = Ingestor::new(
            stream.world().clone(),
            stream.friendships().to_vec(),
            stream.config().n_users,
            cfg,
        );
        for (i, ev) in events.iter().enumerate() {
            if i == 50 {
                continue; // lost forever
            }
            ing.offer(ev.clone());
        }
        ing.flush();
        let (applied, dups, gaps) = ing.delivery_stats();
        assert_eq!(applied, 199);
        assert_eq!(dups, 0);
        assert_eq!(gaps, 1);
    }

    #[test]
    fn window_evicts_old_edges_and_visits() {
        let unbounded = tiny_ingest(1200, IngestConfig::default()).0;
        let windowed = tiny_ingest(
            1200,
            IngestConfig {
                window_secs: 86_400,
                ..IngestConfig::default()
            },
        )
        .0;
        assert!(windowed.state().edges_evicted > 0, "window never evicted");
        assert!(
            windowed.state().edges.len() < unbounded.state().edges.len(),
            "windowed graph must be smaller"
        );
        // Retained edges all sit inside the window.
        let cut = windowed.watermark() - 86_400;
        for e in &windowed.state().edges {
            assert!(e.ts >= cut);
        }
        // Profiles are never evicted; only histories are trimmed.
        assert_eq!(windowed.n_profiles(), unbounded.n_profiles());
    }

    #[test]
    fn state_roundtrips_through_json() {
        let (ing, _) = tiny_ingest(250, IngestConfig::default());
        let json = serde_json::to_string(ing.state()).expect("serialize");
        let back: IngestorState = serde_json::from_str(&json).expect("parse");
        assert_eq!(&back, ing.state());
    }
}
