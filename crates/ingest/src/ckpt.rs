//! Durable ingest checkpoints: stream cursor + pipeline state.
//!
//! Same format discipline as the training checkpoints in
//! `hisrect::ckpt`: a `HISRECT-CKPT-V1 <fnv1a64>` header over a JSON
//! payload, written atomically (temp file, `sync_all`, rename), with a
//! keep-2 rotation and a corrupt-skipping `latest_valid` loader. A crash
//! mid-write leaves the previous checkpoint intact; a corrupt latest
//! file falls back to its predecessor.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::pipeline::IngestorState;
use hisrect::ckpt::fnv1a64;
use serde::{Deserialize, Serialize};
use twitter_sim::stream::StreamCursor;

const HEADER: &str = "HISRECT-CKPT-V1";
/// Checkpoints kept on disk (current + one fallback).
const KEEP: usize = 2;

/// Everything needed to restart the closed loop exactly where it stopped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IngestCheckpoint {
    /// Stream position to resume [`twitter_sim::TweetStream`] from.
    pub cursor: StreamCursor,
    /// Full pipeline state.
    pub state: IngestorState,
    /// Fine-tune generations published so far.
    pub generation: u64,
    /// Watermark timestamp the latest published model was trained up to.
    pub trained_to: i64,
}

/// Why a checkpoint could not be written or read.
#[derive(Debug)]
pub enum CkptIoError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Header or checksum mismatch.
    Corrupt(String),
}

impl From<std::io::Error> for CkptIoError {
    fn from(e: std::io::Error) -> Self {
        CkptIoError::Io(e)
    }
}

impl std::fmt::Display for CkptIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptIoError::Io(e) => write!(f, "checkpoint io: {e}"),
            CkptIoError::Corrupt(m) => write!(f, "checkpoint corrupt: {m}"),
        }
    }
}

fn path_for(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("ingest_{seq:08}.ckpt"))
}

/// Atomically writes checkpoint number `seq` into `dir` (created if
/// missing) and prunes everything older than the newest [`KEEP`].
pub fn save_checkpoint(
    dir: &Path,
    seq: u64,
    ck: &IngestCheckpoint,
) -> Result<PathBuf, CkptIoError> {
    fs::create_dir_all(dir)?;
    let payload =
        serde_json::to_string(ck).map_err(|e| CkptIoError::Corrupt(format!("serialize: {e}")))?;
    let body = format!("{HEADER} {:016x}\n{payload}", fnv1a64(payload.as_bytes()));
    let final_path = path_for(dir, seq);
    let tmp = dir.join(format!(".ingest_{seq:08}.tmp"));
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(body.as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&tmp, &final_path)?;
    prune(dir)?;
    Ok(final_path)
}

/// Removes all but the newest [`KEEP`] checkpoints.
fn prune(dir: &Path) -> Result<(), CkptIoError> {
    let mut seqs = list_seqs(dir)?;
    seqs.sort_unstable();
    while seqs.len() > KEEP {
        let seq = seqs.remove(0);
        let _ = fs::remove_file(path_for(dir, seq));
    }
    Ok(())
}

fn list_seqs(dir: &Path) -> Result<Vec<u64>, CkptIoError> {
    let mut seqs = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let name = name.to_string_lossy();
        if let Some(rest) = name
            .strip_prefix("ingest_")
            .and_then(|r| r.strip_suffix(".ckpt"))
        {
            if let Ok(seq) = rest.parse::<u64>() {
                seqs.push(seq);
            }
        }
    }
    Ok(seqs)
}

/// Parses one checkpoint file, verifying header and checksum.
fn load_one(path: &Path) -> Result<IngestCheckpoint, CkptIoError> {
    let raw = fs::read_to_string(path)?;
    let (head, payload) = raw
        .split_once('\n')
        .ok_or_else(|| CkptIoError::Corrupt("missing header line".into()))?;
    let (magic, sum) = head
        .split_once(' ')
        .ok_or_else(|| CkptIoError::Corrupt("malformed header".into()))?;
    if magic != HEADER {
        return Err(CkptIoError::Corrupt(format!("bad magic {magic:?}")));
    }
    let want = u64::from_str_radix(sum, 16)
        .map_err(|_| CkptIoError::Corrupt("unparsable checksum".into()))?;
    let got = fnv1a64(payload.as_bytes());
    if want != got {
        return Err(CkptIoError::Corrupt(format!(
            "checksum mismatch: header {want:016x}, payload {got:016x}"
        )));
    }
    serde_json::from_str(payload).map_err(|e| CkptIoError::Corrupt(format!("payload: {e}")))
}

/// The newest checkpoint in `dir` that parses and passes its checksum,
/// with its sequence number. Corrupt or truncated files are skipped.
/// `None` when the directory is missing or holds no valid checkpoint.
pub fn latest_valid(dir: &Path) -> Option<(u64, IngestCheckpoint)> {
    let mut seqs = list_seqs(dir).ok()?;
    seqs.sort_unstable_by(|a, b| b.cmp(a));
    for seq in seqs {
        if let Ok(ck) = load_one(&path_for(dir, seq)) {
            return Some((seq, ck));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{IngestConfig, Ingestor};
    use twitter_sim::{SimConfig, TweetStream};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hisrect-ingest-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_ck(n_events: usize) -> IngestCheckpoint {
        let mut stream = TweetStream::new(SimConfig::tiny(31));
        let mut ing = Ingestor::new(
            stream.world().clone(),
            stream.friendships().to_vec(),
            stream.config().n_users,
            IngestConfig::default(),
        );
        for _ in 0..n_events {
            ing.offer(stream.next_event());
        }
        ing.flush();
        IngestCheckpoint {
            cursor: stream.cursor(),
            state: ing.state().clone(),
            generation: 3,
            trained_to: 12_345,
        }
    }

    #[test]
    fn roundtrip_and_rotation() {
        let dir = tmp_dir("rotate");
        let ck = sample_ck(120);
        for seq in 0..4u64 {
            save_checkpoint(&dir, seq, &ck).unwrap();
        }
        // Keep-2: only 2 and 3 survive.
        let mut names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        assert_eq!(names, vec!["ingest_00000002.ckpt", "ingest_00000003.ckpt"]);
        let (seq, back) = latest_valid(&dir).expect("valid checkpoint");
        assert_eq!(seq, 3);
        assert_eq!(back, ck);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_latest_falls_back() {
        let dir = tmp_dir("corrupt");
        let ck = sample_ck(60);
        save_checkpoint(&dir, 1, &ck).unwrap();
        save_checkpoint(&dir, 2, &ck).unwrap();
        // Truncate the newest file mid-payload.
        let newest = path_for(&dir, 2);
        let raw = fs::read_to_string(&newest).unwrap();
        fs::write(&newest, &raw[..raw.len() / 2]).unwrap();
        let (seq, back) = latest_valid(&dir).expect("fallback");
        assert_eq!(seq, 1);
        assert_eq!(back, ck);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_dir_is_none() {
        assert!(latest_valid(Path::new("/definitely/not/here")).is_none());
    }
}
