//! The continuous-learning driver: window → fine-tune → publish.
//!
//! Each cycle assembles the [`Ingestor`]'s retained window into a
//! [`twitter_sim::Dataset`] through the shared §6.1.1 protocol, trains a
//! fresh model generation with [`hisrect::HisRectModel::try_train`]
//! under a per-generation [`hisrect::CheckpointConfig`] (`resume: true`,
//! so a cycle killed mid-train continues from its latest `ckpt.rs`
//! snapshot instead of restarting), saves the generation to
//! `model_gen_{g}.json`, and — when a server address is given —
//! atomically publishes it to a running `hisrect serve` via
//! `POST /reload`.
//!
//! Staleness is the loop's health signal: `watermark − trained_to`, the
//! age of the data the serving model has seen, pushed to the
//! `ingest/staleness_s` series. It grows while the stream runs and drops
//! after every successful reload; the CI ingest gate asserts exactly
//! that sawtooth.

use std::net::SocketAddr;
use std::path::PathBuf;

use crate::pipeline::Ingestor;
use hisrect::{ApproachSpec, CheckpointConfig, HisRectModel, TrainError};
use rand::rngs::StdRng;
use rand::{derive_seed, SeedableRng};
use serde::Deserialize;
use serve::HttpClient;
use twitter_sim::types::Timestamp;
use twitter_sim::{assemble, AssembleParams};

/// Static configuration of the fine-tune driver.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Model/training approach (usually [`ApproachSpec::hisrect`]).
    pub spec: ApproachSpec,
    /// Base seed; generation `g` trains with `derive_seed(seed, g)`.
    pub seed: u64,
    /// Directory for model generations and per-generation train
    /// checkpoints.
    pub dir: PathBuf,
    /// Iterations between training snapshots (0 = phase-complete only).
    pub ckpt_every: usize,
    /// Reservoir cap on negative pairs in the window dataset.
    pub max_neg_pairs: usize,
    /// Reservoir cap on unlabeled pairs in the window dataset.
    pub max_unlabeled_pairs: usize,
}

impl DriverConfig {
    /// A driver training the full HisRect approach into `dir`.
    pub fn new(dir: PathBuf, seed: u64) -> Self {
        Self {
            spec: ApproachSpec::hisrect(),
            seed,
            dir,
            ckpt_every: 0,
            max_neg_pairs: 50_000,
            max_unlabeled_pairs: 30_000,
        }
    }
}

/// What one fine-tune cycle produced.
#[derive(Debug, Clone)]
pub struct FineTuneOutcome {
    /// Generation number trained.
    pub generation: u64,
    /// Where the generation's weights were saved.
    pub model_path: PathBuf,
    /// Newest profile timestamp the model has seen (staleness anchor).
    pub trained_to: Timestamp,
    /// Profiles in the window dataset.
    pub n_profiles: usize,
    /// Timelines that survived the window's §6.1.1 filter.
    pub n_timelines: usize,
}

/// Assembles the current window and trains model generation
/// `generation`, resuming from its own latest training checkpoint if one
/// exists (crash recovery). The window dataset is a pure function of the
/// ingestor state and `(seed, generation)`, so an interrupted and
/// resumed cycle trains the same model as an uninterrupted one.
pub fn fine_tune(
    ing: &Ingestor,
    cfg: &DriverConfig,
    generation: u64,
) -> Result<FineTuneOutcome, TrainError> {
    let _span = obs::span("ingest/fine_tune");
    let timelines = ing.timelines();
    let params = AssembleParams {
        name: format!("window-gen{generation}"),
        delta_t: ing.config().delta_t,
        max_neg_pairs: cfg.max_neg_pairs,
        max_unlabeled_pairs: cfg.max_unlabeled_pairs,
    };
    let gen_seed = derive_seed(cfg.seed, generation);
    let mut rng = StdRng::seed_from_u64(gen_seed);
    let dataset = assemble(
        ing.world().clone(),
        timelines,
        ing.friendships().to_vec(),
        &params,
        &mut rng,
    );
    if dataset.profiles.is_empty() || dataset.train.pos_pairs.is_empty() {
        return Err(TrainError::Checkpoint(format!(
            "window too thin to fine-tune: {} profiles, {} positive train pairs",
            dataset.profiles.len(),
            dataset.train.pos_pairs.len()
        )));
    }
    let trained_to = dataset.profiles.iter().map(|p| p.ts).max().unwrap_or(0);
    let ckpt = CheckpointConfig {
        dir: cfg.dir.join(format!("train-gen{generation}")),
        every: cfg.ckpt_every,
        resume: true,
    };
    let model = HisRectModel::try_train(&dataset, &cfg.spec, gen_seed, Some(&ckpt))?;
    let model_path = cfg.dir.join(format!("model_gen_{generation}.json"));
    std::fs::create_dir_all(&cfg.dir)
        .and_then(|_| model.save_json(&model_path))
        .map_err(|e| TrainError::Checkpoint(format!("save {}: {e}", model_path.display())))?;
    obs::incr("ingest/fine_tunes");
    Ok(FineTuneOutcome {
        generation,
        model_path,
        trained_to,
        n_profiles: dataset.profiles.len(),
        n_timelines: dataset.timelines.len(),
    })
}

#[derive(Deserialize)]
struct ReloadReply {
    generation: u64,
}

/// Publishes a saved model generation to a running server via
/// `POST /reload`. Returns the server's new registry generation.
pub fn publish_reload(addr: SocketAddr, model_path: &std::path::Path) -> std::io::Result<u64> {
    let mut client = HttpClient::new(addr);
    let body = serde_json::to_string(&ReloadBody {
        model: model_path.display().to_string(),
    })
    .map_err(|e| std::io::Error::other(format!("encode reload body: {e}")))?;
    let resp = client.post("/reload", &body)?;
    if resp.status != 200 {
        return Err(std::io::Error::other(format!(
            "reload rejected: {} {}",
            resp.status, resp.body
        )));
    }
    let reply: ReloadReply = serde_json::from_str(&resp.body)
        .map_err(|e| std::io::Error::other(format!("parse reload reply: {e}")))?;
    obs::incr("ingest/reloads");
    Ok(reply.generation)
}

#[derive(serde::Serialize)]
struct ReloadBody {
    model: String,
}

/// Records the loop's staleness sample: how far the stream watermark has
/// run ahead of the data the published model was trained on.
pub fn record_staleness(watermark: Timestamp, trained_to: Timestamp) -> f32 {
    let staleness = (watermark - trained_to).max(0) as f32;
    obs::push("ingest/staleness_s", staleness);
    staleness
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{IngestConfig, Ingestor};
    use twitter_sim::{SimConfig, TweetStream};

    #[test]
    fn fine_tune_trains_and_saves_a_generation() {
        let mut stream = TweetStream::new(SimConfig::tiny(41));
        let mut ing = Ingestor::new(
            stream.world().clone(),
            stream.friendships().to_vec(),
            stream.config().n_users,
            IngestConfig::default(),
        );
        // ~6 simulated days of events: enough for a trainable window.
        for _ in 0..800 {
            ing.offer(stream.next_event());
        }
        ing.flush();
        let dir = std::env::temp_dir().join(format!("hisrect-ingest-ft-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = DriverConfig::new(dir.clone(), 9);
        cfg.spec = ApproachSpec::hisrect().with_config(|c| {
            *c = hisrect::HisRectConfig {
                featurizer_iters: 30,
                judge_iters: 30,
                ..hisrect::HisRectConfig::fast()
            };
        });
        let out = fine_tune(&ing, &cfg, 0).expect("fine-tune");
        assert!(out.model_path.exists());
        assert!(out.n_profiles > 0);
        assert!(out.trained_to <= ing.watermark());
        // The saved generation loads back as a working model.
        let model = HisRectModel::load_json(&out.model_path).expect("load");
        assert!(model.feat_dim() > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn thin_window_is_a_typed_error() {
        let stream = TweetStream::new(SimConfig::tiny(43));
        let ing = Ingestor::new(
            stream.world().clone(),
            stream.friendships().to_vec(),
            stream.config().n_users,
            IngestConfig::default(),
        );
        let dir = std::env::temp_dir().join("hisrect-ingest-thin");
        let err = fine_tune(&ing, &DriverConfig::new(dir, 1), 0).unwrap_err();
        assert!(matches!(err, TrainError::Checkpoint(_)));
    }

    #[test]
    fn staleness_is_clamped_and_recorded() {
        assert_eq!(record_staleness(100, 40), 60.0);
        assert_eq!(record_staleness(40, 100), 0.0);
    }
}
