//! The continuous-learning driver: window → fine-tune → publish.
//!
//! Each cycle assembles the [`Ingestor`]'s retained window into a
//! [`twitter_sim::Dataset`] through the shared §6.1.1 protocol, trains a
//! fresh model generation with [`hisrect::HisRectModel::try_train`]
//! under a per-generation [`hisrect::CheckpointConfig`] (`resume: true`,
//! so a cycle killed mid-train continues from its latest `ckpt.rs`
//! snapshot instead of restarting), saves the generation to
//! `model_gen_{g}.json`, and — when a server address is given —
//! atomically publishes it to a running `hisrect serve` via
//! `POST /reload`.
//!
//! With [`DriverConfig::warm_start`] set, generation `g > 0` loads
//! generation `g-1`'s weights as its starting point
//! ([`hisrect::HisRectModel::try_train_from`]) instead of a random init,
//! so each window's fine-tune only has to learn the drift, not the task:
//! the same accuracy arrives in fewer iterations (see
//! `warm_start_beats_cold_start_at_reduced_iterations`).
//!
//! Staleness is the loop's health signal: `watermark − trained_to`, the
//! age of the data the serving model has seen, pushed to the
//! `ingest/staleness_s` series. It grows while the stream runs and drops
//! after every successful reload; the CI ingest gate asserts exactly
//! that sawtooth.

use std::net::SocketAddr;
use std::path::PathBuf;

use crate::pipeline::Ingestor;
use hisrect::{ApproachSpec, CheckpointConfig, HisRectModel, ParamSnapshot, TrainError};
use rand::rngs::StdRng;
use rand::{derive_seed, SeedableRng};
use serde::Deserialize;
use serve::HttpClient;
use twitter_sim::types::Timestamp;
use twitter_sim::{assemble, AssembleParams};

/// Static configuration of the fine-tune driver.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Model/training approach (usually [`ApproachSpec::hisrect`]).
    pub spec: ApproachSpec,
    /// Base seed; generation `g` trains with `derive_seed(seed, g)`.
    pub seed: u64,
    /// Directory for model generations and per-generation train
    /// checkpoints.
    pub dir: PathBuf,
    /// Iterations between training snapshots (0 = phase-complete only).
    pub ckpt_every: usize,
    /// Reservoir cap on negative pairs in the window dataset.
    pub max_neg_pairs: usize,
    /// Reservoir cap on unlabeled pairs in the window dataset.
    pub max_unlabeled_pairs: usize,
    /// Start generation `g > 0` from generation `g-1`'s weights instead
    /// of a random init ([`HisRectModel::try_train_from`]). Falls back to
    /// the previous generation's phase-complete training checkpoint when
    /// the model file is missing, and to a cold start when neither
    /// exists. Off by default: cold starts keep every existing pipeline
    /// bit-identical.
    pub warm_start: bool,
}

impl DriverConfig {
    /// A driver training the full HisRect approach into `dir`.
    pub fn new(dir: PathBuf, seed: u64) -> Self {
        Self {
            spec: ApproachSpec::hisrect(),
            seed,
            dir,
            ckpt_every: 0,
            max_neg_pairs: 50_000,
            max_unlabeled_pairs: 30_000,
            warm_start: false,
        }
    }
}

/// What one fine-tune cycle produced.
#[derive(Debug, Clone)]
pub struct FineTuneOutcome {
    /// Generation number trained.
    pub generation: u64,
    /// Where the generation's weights were saved.
    pub model_path: PathBuf,
    /// Newest profile timestamp the model has seen (staleness anchor).
    pub trained_to: Timestamp,
    /// Profiles in the window dataset.
    pub n_profiles: usize,
    /// Timelines that survived the window's §6.1.1 filter.
    pub n_timelines: usize,
    /// Whether this generation trained from the previous one's weights.
    pub warm_started: bool,
}

/// Assembles the current window and trains model generation
/// `generation`, resuming from its own latest training checkpoint if one
/// exists (crash recovery). The window dataset is a pure function of the
/// ingestor state and `(seed, generation)`, so an interrupted and
/// resumed cycle trains the same model as an uninterrupted one.
pub fn fine_tune(
    ing: &Ingestor,
    cfg: &DriverConfig,
    generation: u64,
) -> Result<FineTuneOutcome, TrainError> {
    let _span = obs::span("ingest/fine_tune");
    let timelines = ing.timelines();
    let params = AssembleParams {
        name: format!("window-gen{generation}"),
        delta_t: ing.config().delta_t,
        max_neg_pairs: cfg.max_neg_pairs,
        max_unlabeled_pairs: cfg.max_unlabeled_pairs,
    };
    let gen_seed = derive_seed(cfg.seed, generation);
    let mut rng = StdRng::seed_from_u64(gen_seed);
    let dataset = assemble(
        ing.world().clone(),
        timelines,
        ing.friendships().to_vec(),
        &params,
        &mut rng,
    );
    if dataset.profiles.is_empty() || dataset.train.pos_pairs.is_empty() {
        return Err(TrainError::Checkpoint(format!(
            "window too thin to fine-tune: {} profiles, {} positive train pairs",
            dataset.profiles.len(),
            dataset.train.pos_pairs.len()
        )));
    }
    let trained_to = dataset.profiles.iter().map(|p| p.ts).max().unwrap_or(0);
    let ckpt = CheckpointConfig {
        dir: cfg.dir.join(format!("train-gen{generation}")),
        every: cfg.ckpt_every,
        resume: true,
    };
    let init = if cfg.warm_start && generation > 0 {
        warm_start_init(cfg, generation - 1)
    } else {
        None
    };
    let warm_started = init.is_some();
    if warm_started {
        obs::incr("ingest/warm_starts");
    }
    let model =
        HisRectModel::try_train_from(&dataset, &cfg.spec, gen_seed, Some(&ckpt), init.as_ref())?;
    let model_path = cfg.dir.join(format!("model_gen_{generation}.json"));
    std::fs::create_dir_all(&cfg.dir)
        .and_then(|_| model.save_json(&model_path))
        .map_err(|e| TrainError::Checkpoint(format!("save {}: {e}", model_path.display())))?;
    obs::incr("ingest/fine_tunes");
    Ok(FineTuneOutcome {
        generation,
        model_path,
        trained_to,
        n_profiles: dataset.profiles.len(),
        n_timelines: dataset.timelines.len(),
        warm_started,
    })
}

/// The previous generation's weights for a warm start: the published
/// `model_gen_{prev}.json` when it exists, else the phase-complete judge
/// checkpoint left in `train-gen{prev}` (a crash between checkpoint and
/// model save leaves only the latter). `None` — a cold start — when
/// neither survives; warm start is an optimization, never a hard
/// dependency on history.
fn warm_start_init(cfg: &DriverConfig, prev: u64) -> Option<ParamSnapshot> {
    let model_path = cfg.dir.join(format!("model_gen_{prev}.json"));
    match HisRectModel::warm_start_params(&model_path) {
        Ok(params) => {
            obs::logln(
                obs::Level::Info,
                &format!("ingest: warm-starting from {}", model_path.display()),
            );
            return Some(params);
        }
        Err(e) => {
            obs::logln(
                obs::Level::Info,
                &format!("ingest: no model for warm start ({e}); trying checkpoints"),
            );
        }
    }
    let train_dir = cfg.dir.join(format!("train-gen{prev}"));
    let params = hisrect::ckpt::warm_start_params(&train_dir, hisrect::judge::PHASE_JUDGE)?;
    obs::logln(
        obs::Level::Info,
        &format!(
            "ingest: warm-starting from phase-complete checkpoint in {}",
            train_dir.display()
        ),
    );
    Some(params)
}

#[derive(Deserialize)]
struct ReloadReply {
    generation: u64,
}

/// Publishes a saved model generation to a running server via
/// `POST /reload`. Returns the server's new registry generation.
pub fn publish_reload(addr: SocketAddr, model_path: &std::path::Path) -> std::io::Result<u64> {
    let mut client = HttpClient::new(addr);
    let body = serde_json::to_string(&ReloadBody {
        model: model_path.display().to_string(),
    })
    .map_err(|e| std::io::Error::other(format!("encode reload body: {e}")))?;
    let resp = client.post("/reload", &body)?;
    if resp.status != 200 {
        return Err(std::io::Error::other(format!(
            "reload rejected: {} {}",
            resp.status, resp.body
        )));
    }
    let reply: ReloadReply = serde_json::from_str(&resp.body)
        .map_err(|e| std::io::Error::other(format!("parse reload reply: {e}")))?;
    obs::incr("ingest/reloads");
    Ok(reply.generation)
}

#[derive(serde::Serialize)]
struct ReloadBody {
    model: String,
}

/// Records the loop's staleness sample: how far the stream watermark has
/// run ahead of the data the published model was trained on.
pub fn record_staleness(watermark: Timestamp, trained_to: Timestamp) -> f32 {
    let staleness = (watermark - trained_to).max(0) as f32;
    obs::push("ingest/staleness_s", staleness);
    staleness
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{IngestConfig, Ingestor};
    use twitter_sim::{Dataset, SimConfig, TweetStream};

    /// The ingestor's window as an evaluation dataset, assembled exactly
    /// as the driver does (distinct seed so eval pairs are independent of
    /// the training assembly).
    fn window_dataset(ing: &Ingestor, seed: u64) -> Dataset {
        let params = AssembleParams {
            name: "warm-eval".into(),
            delta_t: ing.config().delta_t,
            ..AssembleParams::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        assemble(
            ing.world().clone(),
            ing.timelines(),
            ing.friendships().to_vec(),
            &params,
            &mut rng,
        )
    }

    /// Fraction of held-out test pairs judged correctly at the 0.5
    /// threshold.
    fn judge_accuracy(model: &HisRectModel, ds: &Dataset) -> (f64, usize) {
        let (mut correct, mut total) = (0usize, 0usize);
        for (pairs, actual) in [(&ds.test.pos_pairs, true), (&ds.test.neg_pairs, false)] {
            for p in pairs.iter() {
                total += 1;
                if (model.judge_pair(ds, p.i, p.j) > 0.5) == actual {
                    correct += 1;
                }
            }
        }
        (correct as f64 / total.max(1) as f64, total)
    }

    fn spec_with_iters(iters: usize) -> ApproachSpec {
        ApproachSpec::hisrect().with_config(|c| {
            *c = hisrect::HisRectConfig {
                featurizer_iters: iters,
                judge_iters: iters,
                ..hisrect::HisRectConfig::fast()
            };
        })
    }

    #[test]
    fn fine_tune_trains_and_saves_a_generation() {
        let mut stream = TweetStream::new(SimConfig::tiny(41));
        let mut ing = Ingestor::new(
            stream.world().clone(),
            stream.friendships().to_vec(),
            stream.config().n_users,
            IngestConfig::default(),
        );
        // ~6 simulated days of events: enough for a trainable window.
        for _ in 0..800 {
            ing.offer(stream.next_event());
        }
        ing.flush();
        let dir = std::env::temp_dir().join(format!("hisrect-ingest-ft-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = DriverConfig::new(dir.clone(), 9);
        cfg.spec = ApproachSpec::hisrect().with_config(|c| {
            *c = hisrect::HisRectConfig {
                featurizer_iters: 30,
                judge_iters: 30,
                ..hisrect::HisRectConfig::fast()
            };
        });
        let out = fine_tune(&ing, &cfg, 0).expect("fine-tune");
        assert!(out.model_path.exists());
        assert!(out.n_profiles > 0);
        assert!(out.trained_to <= ing.watermark());
        // The saved generation loads back as a working model.
        let model = HisRectModel::load_json(&out.model_path).expect("load");
        assert!(model.feat_dim() > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn thin_window_is_a_typed_error() {
        let stream = TweetStream::new(SimConfig::tiny(43));
        let ing = Ingestor::new(
            stream.world().clone(),
            stream.friendships().to_vec(),
            stream.config().n_users,
            IngestConfig::default(),
        );
        let dir = std::env::temp_dir().join("hisrect-ingest-thin");
        let err = fine_tune(&ing, &DriverConfig::new(dir, 1), 0).unwrap_err();
        assert!(matches!(err, TrainError::Checkpoint(_)));
    }

    /// The warm-start satellite's acceptance test: on a drifted second
    /// window, a warm-started generation 1 running a *fraction* of the
    /// iteration budget must reach at least the accuracy of a cold
    /// generation 1 running the full budget.
    #[test]
    fn warm_start_beats_cold_start_at_reduced_iterations() {
        const FULL_ITERS: usize = 30;
        const WARM_ITERS: usize = 12;
        // Vocabulary drift between windows, so generation 1 has real
        // adaptation to do.
        let mut stream = TweetStream::with_drift(SimConfig::tiny(47), 2);
        let mut ing = Ingestor::new(
            stream.world().clone(),
            stream.friendships().to_vec(),
            stream.config().n_users,
            IngestConfig::default(),
        );
        for _ in 0..800 {
            ing.offer(stream.next_event());
        }
        ing.flush();
        let dir = std::env::temp_dir().join(format!("hisrect-ingest-warm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // Generation 0: cold, full budget (the lineage the warm start
        // will draw from).
        let mut warm_cfg = DriverConfig::new(dir.join("warm"), 9);
        warm_cfg.spec = spec_with_iters(FULL_ITERS);
        let gen0 = fine_tune(&ing, &warm_cfg, 0).expect("generation 0");
        assert!(!gen0.warm_started, "generation 0 has nothing to warm from");

        // Drifted second window.
        for _ in 0..400 {
            ing.offer(stream.next_event());
        }
        ing.flush();

        // Cold generation 1 at the full budget — the reference.
        let mut cold_cfg = DriverConfig::new(dir.join("cold"), 9);
        cold_cfg.spec = spec_with_iters(FULL_ITERS);
        let cold = fine_tune(&ing, &cold_cfg, 1).expect("cold generation 1");
        assert!(!cold.warm_started);

        // Warm generation 1 at a reduced budget.
        warm_cfg.warm_start = true;
        warm_cfg.spec = spec_with_iters(WARM_ITERS);
        let warm = fine_tune(&ing, &warm_cfg, 1).expect("warm generation 1");
        assert!(
            warm.warm_started,
            "model_gen_0.json exists, must warm-start"
        );

        let ds = window_dataset(&ing, derive_seed(9, 500));
        let cold_model = HisRectModel::load_json(&cold.model_path).expect("cold model");
        let warm_model = HisRectModel::load_json(&warm.model_path).expect("warm model");
        let (cold_acc, pairs) = judge_accuracy(&cold_model, &ds);
        let (warm_acc, _) = judge_accuracy(&warm_model, &ds);
        assert!(pairs > 0, "drift window produced no held-out pairs");
        assert!(
            warm_acc >= cold_acc,
            "warm start at {WARM_ITERS} iters must reach cold-start accuracy at \
             {FULL_ITERS} iters: warm {warm_acc:.3} < cold {cold_acc:.3} on {pairs} pairs"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// When the previous generation's model file is gone, the warm start
    /// falls back to its phase-complete training checkpoint; when that is
    /// gone too, the cycle cold-starts instead of failing.
    #[test]
    fn warm_start_falls_back_to_checkpoint_then_cold() {
        let mut stream = TweetStream::new(SimConfig::tiny(53));
        let mut ing = Ingestor::new(
            stream.world().clone(),
            stream.friendships().to_vec(),
            stream.config().n_users,
            IngestConfig::default(),
        );
        for _ in 0..800 {
            ing.offer(stream.next_event());
        }
        ing.flush();
        let dir = std::env::temp_dir().join(format!("hisrect-ingest-wsfb-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = DriverConfig::new(dir.clone(), 11);
        cfg.spec = spec_with_iters(8);
        cfg.warm_start = true;
        let gen0 = fine_tune(&ing, &cfg, 0).expect("generation 0");

        // Model file deleted: the phase-complete judge checkpoint in
        // train-gen0 still carries the weights forward.
        std::fs::remove_file(&gen0.model_path).unwrap();
        let gen1 = fine_tune(&ing, &cfg, 1).expect("generation 1");
        assert!(gen1.warm_started, "checkpoint fallback must warm-start");

        // All traces of generation 1 gone: generation 2 cold-starts.
        std::fs::remove_file(&gen1.model_path).unwrap();
        std::fs::remove_dir_all(dir.join("train-gen1")).unwrap();
        let gen2 = fine_tune(&ing, &cfg, 2).expect("generation 2");
        assert!(!gen2.warm_started, "no lineage left; must cold-start");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn staleness_is_clamped_and_recorded() {
        assert_eq!(record_staleness(100, 40), 60.0);
        assert_eq!(record_staleness(40, 100), 0.0);
    }
}
