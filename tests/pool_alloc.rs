//! Acceptance test for the tape buffer pool: training with the pool on
//! must allocate at most a tenth of what the identical run allocates
//! with the pool bypassed (the "≥90% fewer allocations per epoch"
//! criterion). Allocation counts come from the pool's own counters —
//! with the pool disabled every take is recorded as a miss, so the two
//! runs are directly comparable.

use hisrect::config::{ApproachSpec, HisRectConfig};
use hisrect::model::HisRectModel;
use tensor::pool;
use twitter_sim::{generate, Dataset, SimConfig};

fn spec() -> ApproachSpec {
    ApproachSpec::hisrect().with_config(|c| {
        *c = HisRectConfig {
            featurizer_iters: 60,
            judge_iters: 60,
            ..HisRectConfig::fast()
        };
    })
}

/// Matrix allocations (pool misses) during one full training run. The
/// tiny config keeps every matmul under the parallel threshold, so all
/// allocations land on this thread's pool and nothing escapes to
/// short-lived workers.
fn misses_during_training(ds: &Dataset, pool_on: bool) -> u64 {
    pool::clear();
    pool::set_enabled(pool_on);
    pool::reset_stats();
    let model = HisRectModel::train(ds, &spec(), 5);
    assert!(!model.ssl_stats.poi_losses.is_empty());
    assert!(!model.judge_losses.is_empty());
    let stats = pool::stats();
    eprintln!("pool_on={pool_on}: {stats:?}");
    pool::set_enabled(true);
    pool::clear();
    stats.misses
}

#[test]
fn pool_cuts_training_allocations_by_90_percent() {
    let ds = generate(&SimConfig::tiny(5));
    let without_pool = misses_during_training(&ds, false);
    let with_pool = misses_during_training(&ds, true);
    assert!(
        without_pool > 1_000,
        "bypass run should allocate per iteration: {without_pool}"
    );
    assert!(
        with_pool * 10 <= without_pool,
        "pool saved too little: {with_pool} allocations with pool vs {without_pool} without"
    );
}
