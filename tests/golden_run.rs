//! Golden-run regression suite: a fixed-seed tiny pipeline
//! (simulate → train featurizer → train judge → evaluate) whose metrics
//! fingerprint is pinned bit-for-bit.
//!
//! One test function runs the pipeline four times — at 1 worker thread,
//! at 4 worker threads, with the ANN grid prefilter forced onto the
//! affinity build, and at 1 thread with obs metrics collection on — and
//! requires all four fingerprints to be identical to each other and
//! to the committed golden snapshot. This locks in, simultaneously:
//!
//! - seed determinism of the whole stack (sim, skip-gram, SSL, judge),
//! - the `crates/parallel` bit-identical-results invariant,
//! - that the spatial prefilter never changes which pairs carry affinity
//!   weight (it may only skip pairs the exhaustive scan discards),
//! - that observability instrumentation never perturbs the numerics.
//!
//! A single `#[test]` (its own `[[test]]` binary) keeps `set_threads` and
//! the global obs flag free of cross-test races.
//!
//! To re-bless after an intentional numerics change:
//! `GOLDEN_BLESS=1 cargo test --test golden_run -- --nocapture`
//! and paste the printed array over `GOLDEN_BITS`.

use hisrect::config::{ApproachSpec, HisRectConfig};
use hisrect::model::{Ablation, HisRectModel};
use twitter_sim::{generate, SimConfig};

/// `f32::to_bits` of [`fingerprint`], captured at seed 42 / 40+40 iters.
const GOLDEN_BITS: &[u32] = &[
    0x4004a4dc, 0x3fb415c4, 0x3fd79f83, 0x3f2fe234, 0x3f3069ec, 0x3f362c9e, 0x40e06584, 0x4442c000,
    0x42ea0000,
];

const SEED: u64 = 42;
const ITERS: usize = 40;

/// Trains the tiny pipeline and distills it into a few scalars that
/// depend on essentially every moving part.
fn fingerprint() -> Vec<f32> {
    let ds = generate(&SimConfig::tiny(SEED));
    let spec = ApproachSpec::hisrect().with_config(|c| {
        *c = HisRectConfig {
            featurizer_iters: ITERS,
            judge_iters: ITERS,
            ..HisRectConfig::fast()
        };
    });
    let model = HisRectModel::train(&ds, &spec, SEED);
    let pair = ds.test.pos_pairs[0];
    let feat = model.feature(&ds, ds.test.labeled[0], Ablation::default());
    vec![
        *model.ssl_stats.poi_losses.first().expect("poi losses"),
        *model.ssl_stats.poi_losses.last().expect("poi losses"),
        model.ssl_stats.recent_poi_loss(10),
        *model.judge_losses.first().expect("judge losses"),
        *model.judge_losses.last().expect("judge losses"),
        model.judge_pair(&ds, pair.i, pair.j),
        feat.iter().sum::<f32>(),
        ds.profiles.len() as f32,
        ds.train.pos_pairs.len() as f32,
    ]
}

fn bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn golden_run_is_bit_identical_across_threads_and_metrics() {
    parallel::set_threads(1);
    let serial = fingerprint();

    parallel::set_threads(4);
    let parallel4 = fingerprint();
    assert_eq!(
        bits(&serial),
        bits(&parallel4),
        "1-thread and 4-thread runs diverged: {serial:?} vs {parallel4:?}"
    );

    // Third leg: the ANN grid prefilter forced onto the affinity build.
    // On real corpora `build_affinity` engages it by pair count; forcing
    // it here pins the prefiltered path to the same committed fingerprint,
    // proving the spatial lower bound only ever drops pairs the exhaustive
    // scan would discard anyway.
    std::env::set_var("HISRECT_AFFINITY_PREFILTER", "always");
    let prefiltered = fingerprint();
    std::env::remove_var("HISRECT_AFFINITY_PREFILTER");
    assert_eq!(
        bits(&serial),
        bits(&prefiltered),
        "grid-prefiltered affinity diverged from exhaustive: {serial:?} vs {prefiltered:?}"
    );

    // Fourth leg: metrics on. The numbers must not move, and the obs
    // registry must have seen the whole pipeline.
    parallel::set_threads(1);
    obs::set_enabled(true);
    obs::reset();
    let metered = fingerprint();
    obs::set_enabled(false);
    assert_eq!(
        bits(&serial),
        bits(&metered),
        "metrics collection perturbed the run: {serial:?} vs {metered:?}"
    );

    // Every executed iteration of each trainer left a loss sample.
    assert_eq!(obs::series_values("ssl/l_poi").len(), ITERS);
    assert_eq!(obs::series_values("ssl/grad_norm_poi").len(), ITERS);
    assert_eq!(obs::series_values("judge/l_co").len(), ITERS);
    for span in [
        "sim/generate",
        "affinity/build",
        "ssl/train_featurizer",
        "train/featurizer_phase",
        "train/judge_phase",
        "judge/train",
    ] {
        let stat = obs::span_stat(span).unwrap_or_else(|| panic!("span {span} never closed"));
        assert!(stat.count > 0 && stat.total_ns > 0, "span {span}: {stat:?}");
    }
    assert!(obs::counter_value("affinity/pairs_considered") > 0);
    assert!(
        obs::counter_value("tensor/matmul_serial") + obs::counter_value("tensor/matmul_parallel")
            > 0
    );
    let lat = obs::histogram("judge/pair_latency_ns").expect("judge latency recorded");
    assert!(lat.count() > 0);
    // §6.4.4 claims < 1 ms per pair; the tiny model must clear it easily.
    assert!(
        lat.mean() < 1e6,
        "mean pair latency {} ns exceeds 1 ms",
        lat.mean()
    );
    // The snapshot renders as JSON and carries the same series.
    let snap = obs::snapshot();
    let parsed: serde_json::Value = serde_json::from_str(&snap.to_json()).expect("valid JSON");
    assert!(parsed
        .get("series")
        .and_then(|s| s.get("ssl/l_poi"))
        .is_some());
    obs::reset();

    let got = bits(&serial);
    if std::env::var("GOLDEN_BLESS").is_ok() {
        let rendered: Vec<String> = got.iter().map(|b| format!("{b:#010x}")).collect();
        panic!("GOLDEN_BITS = [{}]", rendered.join(", "));
    }
    assert_eq!(
        got, GOLDEN_BITS,
        "golden fingerprint drifted (values: {serial:?}); if the numerics \
         changed intentionally, re-bless with GOLDEN_BLESS=1"
    );
}
