//! Kill-and-resume golden tests: training interrupted by a deterministic
//! crash fault and resumed from the latest on-disk checkpoint must produce
//! a model byte-identical to the uninterrupted run — at 1 worker thread and
//! at 4.
//!
//! `faultsim` and the `parallel` thread-count are process-global, so every
//! test serializes on [`LOCK`].

use faultsim::FaultKind;
use hisrect::ckpt::CheckpointConfig;
use hisrect::config::{ApproachSpec, HisRectConfig};
use hisrect::error::TrainError;
use hisrect::model::HisRectModel;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use twitter_sim::{generate, Dataset, SimConfig};

static LOCK: Mutex<()> = Mutex::new(());
static DIR_ID: AtomicU64 = AtomicU64::new(0);

const FEAT_ITERS: usize = 60;
const JUDGE_ITERS: usize = 60;

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hisrect-resume-{}-{}",
        std::process::id(),
        DIR_ID.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spec(early_stop: bool) -> ApproachSpec {
    ApproachSpec::hisrect().with_config(|c| {
        *c = HisRectConfig {
            featurizer_iters: FEAT_ITERS,
            judge_iters: JUDGE_ITERS,
            early_stop,
            ..HisRectConfig::fast()
        };
    })
}

fn dataset() -> Dataset {
    generate(&SimConfig::tiny(5))
}

/// Byte-level model identity: the full serialized snapshot (every weight,
/// both loss traces, vocabulary) — not a lossy summary statistic.
fn fingerprint(model: &HisRectModel) -> String {
    serde_json::to_string(&model.snapshot()).expect("serializable snapshot")
}

/// Train with checkpoints, crash at the `crash_at`-th iteration opportunity
/// (the counter spans phases: 1..=60 featurizer, 61..=120 judge), then
/// resume and return the recovered model's fingerprint.
fn crash_and_resume(
    ds: &Dataset,
    spec: &ApproachSpec,
    crash_at: u64,
    expect_phase: &str,
) -> String {
    let dir = tmp_dir();
    let write = CheckpointConfig {
        dir: dir.clone(),
        every: 10,
        resume: false,
    };
    faultsim::clear();
    faultsim::arm(FaultKind::Crash, crash_at);
    let err = HisRectModel::try_train(ds, spec, 5, Some(&write)).err();
    match err {
        Some(TrainError::Interrupted { ref phase, .. }) => {
            assert_eq!(phase, expect_phase, "crash@{crash_at} phase")
        }
        other => panic!("crash@{crash_at}: expected Interrupted, got {other:?}"),
    }
    faultsim::clear();

    let resume = CheckpointConfig {
        dir: dir.clone(),
        every: 10,
        resume: true,
    };
    let model = HisRectModel::try_train(ds, spec, 5, Some(&resume))
        .unwrap_or_else(|e| panic!("resume after crash@{crash_at}: {e}"));
    std::fs::remove_dir_all(&dir).ok();
    fingerprint(&model)
}

#[test]
fn kill_and_resume_is_bit_identical_across_thread_counts() {
    let _g = lock();
    let ds = dataset();
    let spec = spec(false);
    for threads in [1usize, 4] {
        parallel::set_threads(threads);
        let clean = fingerprint(&HisRectModel::try_train(&ds, &spec, 5, None).unwrap());
        // Crash mid-featurizer (iteration 37, past checkpoints 10..30) and
        // mid-judge (judge iteration 20, past the featurizer-complete
        // checkpoint), resume each, and demand byte identity.
        for (crash_at, phase) in [(38, "featurizer"), (FEAT_ITERS as u64 + 21, "judge")] {
            let resumed = crash_and_resume(&ds, &spec, crash_at, phase);
            assert_eq!(
                resumed, clean,
                "threads={threads} crash@{crash_at}: resumed model must be \
                 bit-identical to the uninterrupted run"
            );
        }
    }
}

#[test]
fn resume_with_early_stopping_restores_best_state_tracking() {
    let _g = lock();
    parallel::set_threads(1);
    let ds = dataset();
    let spec = spec(true);
    let clean = fingerprint(&HisRectModel::try_train(&ds, &spec, 5, None).unwrap());
    let resumed = crash_and_resume(&ds, &spec, 38, "featurizer");
    assert_eq!(
        resumed, clean,
        "early-stop best-so-far state must survive the checkpoint round trip"
    );
}

#[test]
fn resume_into_empty_directory_trains_from_scratch() {
    let _g = lock();
    parallel::set_threads(1);
    faultsim::clear();
    let ds = dataset();
    let spec = spec(false);
    let clean = fingerprint(&HisRectModel::try_train(&ds, &spec, 5, None).unwrap());
    let dir = tmp_dir();
    let cfg = CheckpointConfig {
        dir: dir.clone(),
        every: 10,
        resume: true,
    };
    let model = HisRectModel::try_train(&ds, &spec, 5, Some(&cfg)).expect("fresh resume");
    assert_eq!(fingerprint(&model), clean);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpointing_does_not_perturb_training() {
    let _g = lock();
    parallel::set_threads(1);
    faultsim::clear();
    let ds = dataset();
    let spec = spec(false);
    let clean = fingerprint(&HisRectModel::try_train(&ds, &spec, 5, None).unwrap());
    let dir = tmp_dir();
    let cfg = CheckpointConfig {
        dir: dir.clone(),
        every: 10,
        resume: false,
    };
    let with_ckpt = HisRectModel::try_train(&ds, &spec, 5, Some(&cfg)).expect("ckpt train");
    assert_eq!(
        fingerprint(&with_ckpt),
        clean,
        "periodic snapshots must consume no randomness"
    );
    // Rotation keeps a bounded number of files per phase.
    let n_files = std::fs::read_dir(&dir).unwrap().count();
    assert!(
        (1..=4).contains(&n_files),
        "expected 1..=2 checkpoints per phase after rotation, found {n_files}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
