//! Cross-crate contract tests: the dataset, baselines, affinity graph,
//! evaluation protocol and clustering must agree on shared invariants.

use baselines::{naive_judge, ranked_pois, NGramGauss, NGramGaussConfig, TgTiC, TgTiCConfig};
use eval::{acc_at_k, auc, averaged_metrics, negative_folds};
use hisrect::affinity::build_affinity;
use hisrect::clustering::{cluster_by_threshold, partition_pattern};
use hisrect::config::HisRectConfig;
use hisrect::fv::fv_feature;
use tensor::Matrix;
use twitter_sim::{generate, SimConfig};

#[test]
fn affinity_graph_only_references_training_profiles() {
    let ds = generate(&SimConfig::tiny(55));
    let cfg = HisRectConfig::fast();
    let ws = build_affinity(&ds, &cfg);
    let train_profiles: std::collections::HashSet<usize> = ds
        .train
        .labeled
        .iter()
        .chain(&ds.train.unlabeled)
        .copied()
        .collect();
    for w in &ws {
        assert!(
            train_profiles.contains(&w.i),
            "pair references non-train profile"
        );
        assert!(train_profiles.contains(&w.j));
        assert!(w.a >= -1.0 && w.a <= 1.0);
    }
}

#[test]
fn fv_features_are_valid_for_every_training_profile() {
    let ds = generate(&SimConfig::tiny(55));
    for &i in ds.train.labeled.iter().take(200) {
        let f = fv_feature(ds.profile(i), &ds.world.pois, 1000.0, 86_400.0);
        assert_eq!(f.len(), ds.world.pois.len());
        let norm: f32 = f.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-4, "norm = {norm}");
        assert!(f.iter().all(|&x| x >= 0.0));
    }
}

#[test]
fn naive_baselines_work_through_the_shared_protocol() {
    let ds = generate(&SimConfig::tiny(55));
    let tgtic = TgTiC::fit(&ds, TgTiCConfig::default());
    let m = averaged_metrics(&ds.test.pos_pairs, &ds.test.neg_pairs, 10, |pair| {
        naive_judge(
            &tgtic.poi_scores(ds.profile(pair.i)),
            &tgtic.poi_scores(ds.profile(pair.j)),
        )
    });
    // Better than always-false (which would be acc ~0.5 under the folded
    // protocol with equal pos/neg per fold... here folds differ, just
    // check the metrics are in range and recall is non-zero).
    assert!(m.acc > 0.0 && m.acc <= 1.0);
    assert!(m.rec > 0.0, "TG-TI-C should recall something");
}

#[test]
fn gauss_baseline_rankings_feed_acc_at_k() {
    let ds = generate(&SimConfig::tiny(55));
    let gauss = NGramGauss::fit(&ds, NGramGaussConfig::default());
    let idxs: Vec<usize> = ds.test.labeled.iter().copied().take(100).collect();
    let rankings: Vec<Vec<u32>> = idxs
        .iter()
        .map(|&i| ranked_pois(&gauss.poi_scores(ds.profile(i))))
        .collect();
    let truth: Vec<u32> = idxs.iter().map(|&i| ds.profile(i).pid.unwrap()).collect();
    let a1 = acc_at_k(&rankings, &truth, 1);
    let a5 = acc_at_k(&rankings, &truth, 5);
    let a_all = acc_at_k(&rankings, &truth, ds.world.pois.len());
    assert!(a1 <= a5 && a5 <= a_all);
    assert!(a_all <= 1.0);
}

#[test]
fn folds_partition_test_negatives() {
    let ds = generate(&SimConfig::tiny(55));
    let folds = negative_folds(&ds.test.neg_pairs, 10);
    let total: usize = folds.iter().map(Vec::len).sum();
    assert_eq!(total, ds.test.neg_pairs.len());
}

#[test]
fn auc_of_oracle_scores_is_one() {
    let ds = generate(&SimConfig::tiny(55));
    let (scores, labels) = eval::protocol::score_set(&ds.test.pos_pairs, &ds.test.neg_pairs, |p| {
        p.co_label.unwrap() as u8 as f64
    });
    assert!((auc(&scores, &labels) - 1.0).abs() < 1e-12);
}

#[test]
fn ground_truth_probability_matrix_clusters_perfectly() {
    let ds = generate(&SimConfig::tiny(55));
    // Take 5 labeled test profiles, build the oracle matrix, and check
    // connected components recover the POI partition.
    let idxs: Vec<usize> = ds.test.labeled.iter().copied().take(5).collect();
    let n = idxs.len();
    let mut probs = Matrix::zeros(n, n);
    for a in 0..n {
        for b in 0..n {
            if a != b && ds.profile(idxs[a]).pid == ds.profile(idxs[b]).pid {
                probs.set(a, b, 1.0);
            }
        }
    }
    let labels = cluster_by_threshold(&probs, 0.5);
    let mut map = std::collections::HashMap::new();
    let truth: Vec<usize> = idxs
        .iter()
        .map(|&i| {
            let pid = ds.profile(i).pid.unwrap();
            let next = map.len();
            *map.entry(pid).or_insert(next)
        })
        .collect();
    assert!(hisrect::clustering::same_partition(&labels, &truth));
    assert_eq!(
        partition_pattern(&labels).iter().sum::<usize>(),
        n,
        "pattern must cover every profile"
    );
}
