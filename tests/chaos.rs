//! Chaos suite: every injected fault class must end in recovery or a
//! typed error — never a panic escaping the training entry points.
//!
//! Faults are driven through the deterministic `faultsim` registry, which
//! is process-global; every test serializes on [`LOCK`] and starts from a
//! clean slate.

use faultsim::FaultKind;
use hisrect::ckpt::CheckpointConfig;
use hisrect::config::ApproachSpec;
use hisrect::error::TrainError;
use hisrect::model::HisRectModel;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use twitter_sim::{generate, Dataset, SimConfig};

static LOCK: Mutex<()> = Mutex::new(());
static DIR_ID: AtomicU64 = AtomicU64::new(0);

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hisrect-chaos-{}-{}",
        std::process::id(),
        DIR_ID.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn fast_spec() -> ApproachSpec {
    ApproachSpec::hisrect().with_config(|c| {
        *c = hisrect::config::HisRectConfig {
            featurizer_iters: 60,
            judge_iters: 60,
            ..hisrect::config::HisRectConfig::fast()
        };
    })
}

fn dataset() -> Dataset {
    generate(&SimConfig::tiny(5))
}

fn fingerprint(model: &HisRectModel) -> String {
    serde_json::to_string(&model.snapshot()).expect("serializable snapshot")
}

#[test]
fn nan_grad_in_featurizer_recovers() {
    let _g = lock();
    faultsim::clear();
    obs::set_enabled(true);
    obs::reset();
    let ds = dataset();
    // The 10th nan-grad opportunity is featurizer iteration 9.
    faultsim::arm(FaultKind::NanGrad, 10);
    let model = HisRectModel::try_train(&ds, &fast_spec(), 5, None).expect("recovers");
    faultsim::clear();
    assert!(
        obs::counter_value("train/divergence_detected") >= 1,
        "the poisoned gradient must be detected"
    );
    assert!(
        obs::counter_value("train/divergence_rollbacks") >= 1,
        "recovery must roll back"
    );
    // The recovered model is finite and usable.
    let pair = ds.test.pos_pairs[0];
    let p = model.judge_pair(&ds, pair.i, pair.j);
    assert!(p.is_finite() && (0.0..=1.0).contains(&p));
    obs::set_enabled(false);
}

#[test]
fn nan_grad_in_judge_recovers() {
    let _g = lock();
    faultsim::clear();
    obs::set_enabled(true);
    obs::reset();
    let ds = dataset();
    let spec = fast_spec();
    // nan-grad opportunities: one per featurizer iteration (60), then one
    // per judge iteration — the 70th lands at judge iteration 9.
    faultsim::arm(FaultKind::NanGrad, spec.config.featurizer_iters as u64 + 10);
    let model = HisRectModel::try_train(&ds, &spec, 5, None).expect("recovers");
    faultsim::clear();
    assert!(obs::counter_value("train/divergence_rollbacks") >= 1);
    assert!(model.judge_losses.iter().all(|l| l.is_finite()));
    obs::set_enabled(false);
}

#[test]
fn worker_panic_surfaces_as_typed_error() {
    let _g = lock();
    faultsim::clear();
    let ds = dataset();
    faultsim::arm(FaultKind::WorkerPanic, 1);
    let err = HisRectModel::try_train(&ds, &fast_spec(), 5, None)
        .err()
        .expect("worker panic must fail training");
    faultsim::clear();
    match err {
        TrainError::WorkerPanic(msg) => {
            assert!(msg.contains("injected worker panic"), "got: {msg}")
        }
        other => panic!("expected WorkerPanic, got {other:?}"),
    }
}

#[test]
fn persistent_divergence_is_a_typed_error() {
    let _g = lock();
    faultsim::clear();
    let ds = dataset();
    // A NaN learning rate poisons the parameters on the very first update,
    // so every rollback + backoff retry diverges again.
    let spec = fast_spec().with_config(|c| c.lr = f32::NAN);
    let err = HisRectModel::try_train(&ds, &spec, 5, None)
        .err()
        .expect("unrecoverable divergence must fail training");
    match err {
        TrainError::Diverged { phase, retries, .. } => {
            assert_eq!(phase, "featurizer");
            assert!(retries >= 3, "retries = {retries}");
        }
        other => panic!("expected Diverged, got {other:?}"),
    }
}

/// One corrupted-checkpoint scenario per writer-side fault class: the
/// newest snapshot on disk is damaged in flight, so resume must detect it
/// (checksum/format/parse) and fall back to the previous good snapshot —
/// and still reproduce the uninterrupted run bit-for-bit.
#[test]
fn corrupted_checkpoints_fall_back_to_previous_good_snapshot() {
    let _g = lock();
    for fault in [
        FaultKind::TornWrite,
        FaultKind::BitFlip,
        FaultKind::CorruptJson,
    ] {
        faultsim::clear();
        obs::set_enabled(true);
        obs::reset();
        let ds = dataset();
        let spec = fast_spec();
        let clean = fingerprint(&HisRectModel::try_train(&ds, &spec, 5, None).unwrap());

        let dir = tmp_dir();
        let ckpt = CheckpointConfig {
            dir: dir.clone(),
            every: 10,
            resume: false,
        };
        // Featurizer checkpoints land at iterations 10..50 (saves 1..=5)
        // plus the phase-complete one (save 6). Corrupt save 5 (iteration
        // 50) and crash right after it, so the rotation window holds one
        // good (40) and one corrupt (50) snapshot.
        faultsim::arm(fault, 5);
        faultsim::arm(FaultKind::Crash, 52);
        let err = HisRectModel::try_train(&ds, &spec, 5, Some(&ckpt)).err();
        assert!(
            matches!(err, Some(TrainError::Interrupted { .. })),
            "{fault:?}: expected interrupt, got {err:?}"
        );
        faultsim::clear();

        let resumed = HisRectModel::try_train(
            &ds,
            &spec,
            5,
            Some(&CheckpointConfig {
                dir: dir.clone(),
                every: 10,
                resume: true,
            }),
        )
        .expect("resume after corrupt checkpoint");
        assert!(
            obs::counter_value("ckpt/corrupt_skipped") >= 1,
            "{fault:?}: the damaged snapshot must be skipped"
        );
        assert_eq!(
            fingerprint(&resumed),
            clean,
            "{fault:?}: fallback resume must reproduce the clean run"
        );
        std::fs::remove_dir_all(&dir).ok();
        obs::set_enabled(false);
    }
}

#[test]
fn crash_error_names_phase_and_iteration() {
    let _g = lock();
    faultsim::clear();
    let ds = dataset();
    faultsim::arm(FaultKind::Crash, 38);
    let err = HisRectModel::try_train(&ds, &fast_spec(), 5, None)
        .err()
        .expect("crash fault must interrupt");
    faultsim::clear();
    match err {
        TrainError::Interrupted { phase, iteration } => {
            assert_eq!(phase, "featurizer");
            assert_eq!(iteration, 37);
        }
        other => panic!("expected Interrupted, got {other:?}"),
    }
}
