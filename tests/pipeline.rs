//! End-to-end pipeline integration tests: simulate → train → judge,
//! asserting the system actually learns and behaves consistently.

use hisrect::config::{ApproachSpec, HisRectConfig};
use hisrect::model::{Ablation, HisRectModel};
use twitter_sim::{generate, Dataset, SimConfig};

fn fast(spec: ApproachSpec) -> ApproachSpec {
    spec.with_config(|c| {
        *c = HisRectConfig {
            featurizer_iters: 500,
            judge_iters: 400,
            ..HisRectConfig::fast()
        };
    })
}

/// Between `tiny` and the experiment presets: big enough that learning is
/// measurable, small enough for the test suite.
fn dataset() -> Dataset {
    let mut cfg = SimConfig::tiny(101);
    cfg.n_users = 120;
    cfg.n_pois = 12;
    cfg.days = 20;
    generate(&cfg)
}

/// Judgement accuracy on a balanced sample of test pairs.
fn balanced_accuracy(model: &HisRectModel, ds: &Dataset, n: usize) -> f64 {
    let mut correct = 0usize;
    let mut total = 0usize;
    for pair in ds.test.pos_pairs.iter().take(n) {
        total += 1;
        if model.judge_pair(ds, pair.i, pair.j) > 0.5 {
            correct += 1;
        }
    }
    for pair in ds.test.neg_pairs.iter().take(n) {
        total += 1;
        if model.judge_pair(ds, pair.i, pair.j) <= 0.5 {
            correct += 1;
        }
    }
    correct as f64 / total as f64
}

#[test]
fn hisrect_learns_co_location_above_chance() {
    let ds = dataset();
    let model = HisRectModel::train(&ds, &fast(ApproachSpec::hisrect()), 1);
    let acc = balanced_accuracy(&model, &ds, 60);
    assert!(acc > 0.65, "balanced accuracy = {acc}");
}

#[test]
fn supervised_only_variant_also_learns() {
    let ds = dataset();
    let model = HisRectModel::train(&ds, &fast(ApproachSpec::hisrect_sl()), 1);
    let acc = balanced_accuracy(&model, &ds, 60);
    assert!(acc > 0.6, "balanced accuracy = {acc}");
}

#[test]
fn one_phase_variant_also_learns() {
    let ds = dataset();
    let model = HisRectModel::train(&ds, &fast(ApproachSpec::one_phase()), 1);
    let acc = balanced_accuracy(&model, &ds, 60);
    assert!(acc > 0.6, "balanced accuracy = {acc}");
}

#[test]
fn judgement_is_symmetric() {
    let ds = dataset();
    let model = HisRectModel::train(&ds, &fast(ApproachSpec::hisrect()), 2);
    for pair in ds.test.pos_pairs.iter().take(5) {
        let pij = model.judge_pair(&ds, pair.i, pair.j);
        let pji = model.judge_pair(&ds, pair.j, pair.i);
        assert!((pij - pji).abs() < 1e-5, "asymmetric: {pij} vs {pji}");
    }
}

#[test]
fn poi_classifier_beats_chance() {
    let ds = dataset();
    let model = HisRectModel::train(&ds, &fast(ApproachSpec::hisrect()), 3);
    let mut correct = 0usize;
    let sample: Vec<_> = ds.test.labeled.iter().copied().take(150).collect();
    for &i in &sample {
        let probs = model.poi_probs(&ds, i);
        let pred = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(k, _)| k as u32)
            .unwrap();
        if Some(pred) == ds.profile(i).pid {
            correct += 1;
        }
    }
    let acc = correct as f64 / sample.len() as f64;
    let chance = 1.0 / ds.world.pois.len() as f64;
    assert!(acc > 2.0 * chance, "acc = {acc}, chance = {chance}");
}

#[test]
fn training_is_deterministic_in_the_seed() {
    let ds = dataset();
    let m1 = HisRectModel::train(&ds, &fast(ApproachSpec::tweet_only()), 9);
    let m2 = HisRectModel::train(&ds, &fast(ApproachSpec::tweet_only()), 9);
    let pair = ds.test.pos_pairs[0];
    let p1 = m1.judge_pair(&ds, pair.i, pair.j);
    let p2 = m2.judge_pair(&ds, pair.i, pair.j);
    assert_eq!(p1, p2);
}

#[test]
fn features_are_finite_and_fixed_width() {
    let ds = dataset();
    let model = HisRectModel::train(&ds, &fast(ApproachSpec::hisrect()), 4);
    for &i in ds.test.labeled.iter().take(30) {
        let f = model.feature(&ds, i, Ablation::default());
        assert_eq!(f.len(), model.feat_dim());
        assert!(f.iter().all(|x| x.is_finite()));
    }
}

#[test]
fn full_model_degrades_gracefully_under_test_time_ablation() {
    // Table 5's qualitative claim: removing either source hurts, removing
    // content hurts more than removing history for this model family.
    let ds = dataset();
    let model = HisRectModel::train(&ds, &fast(ApproachSpec::hisrect()), 5);
    let acc = |ablation: Ablation| {
        let mut correct = 0usize;
        let mut total = 0usize;
        for (pairs, label) in [(&ds.test.pos_pairs, true), (&ds.test.neg_pairs, false)] {
            for pair in pairs.iter().take(50) {
                let fi = model.feature(&ds, pair.i, ablation);
                let fj = model.feature(&ds, pair.j, ablation);
                total += 1;
                if (model.judge_features(&fi, &fj) > 0.5) == label {
                    correct += 1;
                }
            }
        }
        correct as f64 / total as f64
    };
    let full = acc(Ablation::default());
    let no_content = acc(Ablation {
        drop_content: true,
        drop_history: false,
    });
    assert!(
        full >= no_content - 0.02,
        "full = {full}, without content = {no_content}"
    );
}
