//! Quickstart: simulate a small city, train the full HisRect system, and
//! judge whether two users are co-located.
//!
//! ```sh
//! cargo run --release -p hisrect --example quickstart
//! ```

use hisrect::config::ApproachSpec;
use hisrect::model::HisRectModel;
use twitter_sim::{generate, SimConfig};

fn main() {
    // 1. A small simulated Twitter corpus with planted co-location truth.
    //    (Swap in `SimConfig::nyc_like(42)` for the full experiment scale.)
    let dataset = generate(&SimConfig::tiny(42));
    let stats = dataset.stats();
    println!(
        "simulated {}: {} POIs, {} timelines, {} labeled training profiles",
        stats.name, stats.n_pois, stats.n_timelines, stats.train_labeled_profiles
    );

    // 2. Train the full pipeline: skip-gram word vectors, the semi-
    //    supervised HisRect featurizer (Algorithm 1), and the co-location
    //    judge E' + C.
    let spec = ApproachSpec::hisrect();
    println!("training `{}` ...", spec.name);
    let model = HisRectModel::train(&dataset, &spec, 42);
    println!(
        "trained {} parameters; final L_poi = {:.3}, L_co = {:.3}",
        model.n_parameters(),
        model.ssl_stats.recent_poi_loss(20),
        model.judge_losses.iter().rev().take(20).sum::<f32>() / 20.0,
    );

    // 3. Judge test pairs: co-located pairs should score higher than
    //    separated ones, and thresholding at 0.5 should mostly agree with
    //    the ground truth.
    let avg = |pairs: &[twitter_sim::Pair]| {
        let take = pairs.len().min(25);
        pairs[..take]
            .iter()
            .map(|p| model.judge_pair(&dataset, p.i, p.j) as f64)
            .sum::<f64>()
            / take as f64
    };
    let p_pos = avg(&dataset.test.pos_pairs);
    let p_neg = avg(&dataset.test.neg_pairs);
    println!("mean p_co over co-located pairs: {p_pos:.3}");
    println!("mean p_co over separated pairs:  {p_neg:.3}");

    // 4. The same features also power POI inference.
    let mut correct = 0usize;
    let sample: Vec<_> = dataset.test.labeled.iter().copied().take(50).collect();
    for &idx in &sample {
        let probs = model.poi_probs(&dataset, idx);
        let best = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i as u32)
            .unwrap();
        if Some(best) == dataset.profile(idx).pid {
            correct += 1;
        }
    }
    println!(
        "POI inference: {}/{} test profiles correct (chance: 1/{})",
        correct,
        sample.len(),
        dataset.world.pois.len()
    );
}
