//! Friends notification (the paper's §1 motivating service): when two
//! friends tweet within Δt, decide from their profiles whether they are at
//! the same POI and fire a notification — *without* using the tweets'
//! geo-tags at decision time.
//!
//! ```sh
//! cargo run --release -p hisrect --example friends_notification
//! ```

use hisrect::config::ApproachSpec;
use hisrect::model::HisRectModel;
use twitter_sim::{generate, ProfileIdx, SimConfig};

/// A toy friendship registry: users are friends when their uids are close.
fn are_friends(a: u32, b: u32) -> bool {
    a != b && a.abs_diff(b) <= 3
}

fn main() {
    let dataset = generate(&SimConfig::tiny(7));
    println!("training HisRect for the notification service ...");
    let model = HisRectModel::train(&dataset, &ApproachSpec::hisrect(), 7);

    // Replay the test period as a stream of incoming (already featurized)
    // profiles, keeping a Δt-wide sliding window.
    let mut stream: Vec<ProfileIdx> = dataset.test.labeled.clone();
    stream.sort_by_key(|&i| dataset.profile(i).ts);

    let mut window: Vec<ProfileIdx> = Vec::new();
    let mut notifications = 0usize;
    let mut correct = 0usize;
    let mut checked = 0usize;

    for &incoming in &stream {
        let now = dataset.profile(incoming).ts;
        window.retain(|&i| now - dataset.profile(i).ts < dataset.delta_t);

        for &candidate in &window {
            let (pi, pj) = (dataset.profile(incoming), dataset.profile(candidate));
            if !are_friends(pi.uid, pj.uid) {
                continue;
            }
            checked += 1;
            let p = model.judge_pair(&dataset, incoming, candidate);
            let together = p > 0.5;
            let truth = pi.pid == pj.pid;
            if together {
                notifications += 1;
                if notifications <= 5 {
                    println!(
                        "notify: users {} and {} look co-located (p = {p:.2}, truth: {})",
                        pi.uid,
                        pj.uid,
                        if truth { "together" } else { "apart" }
                    );
                }
            }
            if together == truth {
                correct += 1;
            }
        }
        window.push(incoming);
    }

    println!(
        "\nchecked {checked} friend encounters, fired {notifications} notifications, \
         decision accuracy {:.1}%",
        100.0 * correct as f64 / checked.max(1) as f64
    );
}
