//! Group detection (the paper's §6.5 case study): given a handful of
//! profiles from the same hour, cluster them into co-located groups by
//! thresholding pairwise co-location probabilities and taking connected
//! components — no cluster count needed.
//!
//! ```sh
//! cargo run --release -p hisrect --example group_detection
//! ```

use hisrect::clustering::{cluster_by_threshold, partition_pattern};
use hisrect::config::ApproachSpec;
use hisrect::model::{Ablation, HisRectModel};
use tensor::Matrix;
use twitter_sim::{generate, ProfileIdx, SimConfig};

fn main() {
    let dataset = generate(&SimConfig::tiny(11));
    println!("training HisRect ...");
    let model = HisRectModel::train(&dataset, &ApproachSpec::hisrect(), 11);

    // Pick up to 6 labeled test profiles from the densest Δt window,
    // distinct users.
    let mut sorted: Vec<ProfileIdx> = dataset.test.labeled.clone();
    sorted.sort_by_key(|&i| dataset.profile(i).ts);
    let mut group: Vec<ProfileIdx> = Vec::new();
    'outer: for (k, &start) in sorted.iter().enumerate() {
        let mut candidate = vec![start];
        let t0 = dataset.profile(start).ts;
        for &cand in &sorted[k + 1..] {
            let p = dataset.profile(cand);
            if p.ts - t0 >= dataset.delta_t {
                break;
            }
            if candidate.iter().all(|&g| dataset.profile(g).uid != p.uid) {
                candidate.push(cand);
                if candidate.len() == 6 {
                    group = candidate;
                    break 'outer;
                }
            }
        }
        if candidate.len() > group.len() {
            group = candidate;
        }
    }
    assert!(group.len() >= 2, "not enough concurrent test profiles");

    // Pairwise probability matrix from cached features.
    let feats = model.featurize_many(&dataset, &group, Ablation::default());
    let n = group.len();
    let mut probs = Matrix::zeros(n, n);
    for a in 0..n {
        for b in (a + 1)..n {
            let p = model.judge_features(&feats[&group[a]], &feats[&group[b]]);
            probs.set(a, b, p);
            probs.set(b, a, p);
        }
    }

    let labels = cluster_by_threshold(&probs, 0.5);
    println!("\nprofiles and predicted groups:");
    for (k, &idx) in group.iter().enumerate() {
        let p = dataset.profile(idx);
        println!(
            "  user {:>3} at t={:>7}  true poi_{:<3} -> predicted group {}",
            p.uid,
            p.ts,
            p.pid.unwrap(),
            labels[k]
        );
    }
    println!("predicted pattern: {:?}", partition_pattern(&labels));

    let truth: Vec<usize> = {
        // Dense ground-truth labels from the POIs.
        let mut map = std::collections::HashMap::new();
        group
            .iter()
            .map(|&i| {
                let pid = dataset.profile(i).pid.unwrap();
                let next = map.len();
                *map.entry(pid).or_insert(next)
            })
            .collect()
    };
    println!("actual pattern:    {:?}", partition_pattern(&truth));
}
