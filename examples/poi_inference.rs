//! POI inference for non-geotagged tweets (§6.3.3): rank POI candidates
//! for a profile with the HisRect featurizer + POI classifier, and compare
//! against the N-Gram-Gauss geolocalization baseline.
//!
//! ```sh
//! cargo run --release -p hisrect --example poi_inference
//! ```

use baselines::{ranked_pois, NGramGauss, NGramGaussConfig};
use eval::acc_at_k;
use hisrect::config::ApproachSpec;
use hisrect::model::HisRectModel;
use twitter_sim::{generate, SimConfig};

fn main() {
    let dataset = generate(&SimConfig::tiny(19));
    println!("training HisRect ...");
    let model = HisRectModel::train(&dataset, &ApproachSpec::hisrect(), 19);
    let gauss = NGramGauss::fit(&dataset, NGramGaussConfig::default());

    // Rank POIs for every labeled test profile (geo-tags hidden).
    let idxs = &dataset.test.labeled;
    let truth: Vec<u32> = idxs
        .iter()
        .map(|&i| dataset.profile(i).pid.unwrap())
        .collect();

    let hisrect_rankings: Vec<Vec<u32>> = idxs
        .iter()
        .map(|&i| {
            let probs = model.poi_probs(&dataset, i);
            ranked_pois(&probs.iter().map(|&p| p as f64).collect::<Vec<_>>())
        })
        .collect();
    let gauss_rankings: Vec<Vec<u32>> = idxs
        .iter()
        .map(|&i| ranked_pois(&gauss.poi_scores(dataset.profile(i))))
        .collect();

    println!("\nAcc@K on {} test profiles:", idxs.len());
    println!("{:>4} {:>10} {:>14}", "K", "HisRect", "N-Gram-Gauss");
    for k in [1usize, 2, 3, 5] {
        println!(
            "{k:>4} {:>10.4} {:>14.4}",
            acc_at_k(&hisrect_rankings, &truth, k),
            acc_at_k(&gauss_rankings, &truth, k)
        );
    }

    // Show one concrete inference.
    let i = idxs[0];
    let p = dataset.profile(i);
    println!(
        "\nexample profile: user {} tweeting {:?}",
        p.uid,
        p.tokens.iter().take(6).collect::<Vec<_>>()
    );
    println!(
        "  true POI poi_{}, HisRect top-3: {:?}",
        p.pid.unwrap(),
        &hisrect_rankings[0][..3.min(hisrect_rankings[0].len())]
    );
}
