//! Importing your own data: build a [`twitter_sim::Dataset`] from raw
//! posts and POI polygons with [`CorpusBuilder`], then train and judge.
//!
//! The posts here are hard-coded; in practice you would read them from
//! your own export (see `twitter_sim::io::CorpusFile` for the JSON
//! schema the `hisrect` CLI consumes).
//!
//! ```sh
//! cargo run --release -p hisrect --example import_corpus
//! ```

use geo::{GeoPoint, Poi, Polygon};
use hisrect::config::{ApproachSpec, HisRectConfig};
use hisrect::model::HisRectModel;
use twitter_sim::{CorpusBuilder, RawTweet};

fn main() {
    // 1. Your POI universe: polygons from OSM or any source.
    let cafe = GeoPoint::new(40.7505, -73.9934);
    let park = GeoPoint::new(40.7590, -73.9845);
    let pois = vec![
        Poi {
            id: 0,
            name: "corner-cafe".into(),
            polygon: Polygon::regular(cafe, 80.0, 8, 0.0),
        },
        Poi {
            id: 0,
            name: "the-park".into(),
            polygon: Polygon::regular(park, 200.0, 10, 0.4),
        },
    ];

    // 2. Raw timelines: timestamps, text, optional coordinates.
    let mut builder = CorpusBuilder::new("imported", pois).delta_t(3600).seed(1);
    let mut rng_like = 0u64; // deterministic pseudo-jitter for the demo
    for uid in 0..60u32 {
        let mut tweets = Vec::new();
        for day in 0..20i64 {
            rng_like = rng_like
                .wrapping_mul(6364136223846793005)
                .wrapping_add(uid as u64 + 1);
            let at_cafe = (rng_like >> 32).is_multiple_of(2);
            let (spot, text) = if at_cafe {
                (cafe, "grabbing the usual espresso and a croissant")
            } else {
                (park, "morning run around the pond with great weather")
            };
            tweets.push(RawTweet {
                ts: day * 86_400 + 9 * 3600 + (uid as i64 % 50) * 60,
                text: text.into(),
                lat: Some(spot.lat),
                lon: Some(spot.lon),
            });
            tweets.push(RawTweet {
                ts: day * 86_400 + 20 * 3600,
                text: "thoughts about nothing in particular".into(),
                lat: None,
                lon: None,
            });
        }
        builder.push_timeline(uid, tweets);
    }

    // 3. The builder runs the paper's preprocessing, labeling and
    //    splitting pipeline.
    let dataset = builder.build();
    let stats = dataset.stats();
    println!(
        "imported {} timelines -> {} labeled training profiles, {}+ / {}- test pairs",
        stats.n_timelines, stats.train_labeled_profiles, stats.test_pos_pairs, stats.test_neg_pairs
    );

    // 4. Train and judge exactly as with simulated data.
    let spec = ApproachSpec::hisrect().with_config(|c| {
        *c = HisRectConfig {
            featurizer_iters: 300,
            judge_iters: 300,
            ..HisRectConfig::fast()
        };
    });
    let model = HisRectModel::train(&dataset, &spec, 1);
    let mut correct = 0usize;
    let mut total = 0usize;
    for (pairs, label) in [
        (&dataset.test.pos_pairs, true),
        (&dataset.test.neg_pairs, false),
    ] {
        for pair in pairs.iter().take(50) {
            total += 1;
            if (model.judge_pair(&dataset, pair.i, pair.j) > 0.5) == label {
                correct += 1;
            }
        }
    }
    println!(
        "balanced co-location accuracy on imported data: {:.1}%",
        100.0 * correct as f64 / total.max(1) as f64
    );
}
